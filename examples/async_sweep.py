"""Async sweep: mine one table under many configs, concurrently.

The asyncio front end runs the same five-step pipeline as
``mine_quantitative_rules`` — bit-identically — but off the event loop,
so one process can multiplex a whole parameter sweep:
``MiningJobRunner`` bounds how many jobs mine at once, every job shares
one warm artifact cache (a confidence sweep re-counts nothing), and each
job can be watched, timed out, or cancelled independently.

Run:  python examples/async_sweep.py [num_records]
"""

import asyncio
import dataclasses
import sys

from repro import MinerConfig, MiningJobRunner, mine_quantitative_rules_async
from repro.data import generate_credit_table


async def main(num_records: int) -> None:
    table = generate_credit_table(num_records, seed=42)
    base = MinerConfig(
        min_support=0.3,
        min_confidence=0.5,
        partial_completeness=2.0,
        max_itemset_size=3,
    )

    # 1. One awaitable mining run, with per-stage progress events.
    def on_stage(event):
        print(f"  stage {event.stage}: {event.seconds:.3f}s "
              f"(cache {event.cache_event})")

    print(f"single async run over {table.num_records} records:")
    result = await mine_quantitative_rules_async(
        table, base, progress=on_stage
    )
    print(f"  -> {len(result.rules)} rules\n")

    # 2. A concurrent confidence sweep.  All jobs share the runner's
    #    artifact cache, so only rule generation differs per job —
    #    the frequent-itemset search is mined once and restored twice.
    configs = [
        dataclasses.replace(base, min_confidence=conf)
        for conf in (0.4, 0.6, 0.8)
    ]
    async with MiningJobRunner(max_concurrent_jobs=3) as runner:
        results = await runner.run_sweep(table, configs)
        print("confidence sweep (3 concurrent jobs, shared cache):")
        for config, swept in zip(configs, results):
            print(f"  minconf={config.min_confidence:.1f}: "
                  f"{len(swept.rules)} rules")
        print()
        print(runner.stats.summary())


if __name__ == "__main__":
    records = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    asyncio.run(main(records))

"""Census-style demographics — the paper's motivating scenario scaled up.

The introduction motivates quantitative rules with people data: "10% of
married people between age 50 and 60 have at least 2 cars."  This example
synthesizes a census-like table (age, income, hours worked, marital
status, education) with plausible life-cycle structure and mines it end
to end, including loading/saving through the CSV path a practitioner
would use.

Run:  python examples/census_demographics.py [num_records]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import MinerConfig, QuantitativeMiner, RelationalTable, TableSchema
from repro.table import categorical, load_csv, quantitative, save_csv

MARITAL = ("single", "married", "divorced", "widowed")
EDUCATION = ("highschool", "college", "graduate")


def synthesize(num_records: int, seed: int = 0) -> RelationalTable:
    rng = np.random.default_rng(seed)
    age = rng.integers(18, 81, num_records).astype(float)

    # Marriage probability rises with age, then widowhood appears.
    p_married = np.clip((age - 18) / 40, 0.05, 0.75)
    draw = rng.uniform(size=num_records)
    marital = np.where(
        draw < p_married,
        1,
        np.where(draw < p_married + 0.15, 0, np.where(age > 65, 3, 2)),
    ).astype(np.int64)

    education = rng.choice(3, num_records, p=[0.45, 0.4, 0.15]).astype(
        np.int64
    )

    # Income peaks mid-career and rises with education.
    career = np.clip((age - 18) / 25.0, 0, 1) * np.clip(
        (75 - age) / 20.0, 0.3, 1
    )
    base = 22_000 + 30_000 * career + 18_000 * education
    income = base * rng.lognormal(0, 0.3, num_records)

    hours = np.clip(
        rng.normal(40 - np.maximum(0, age - 60) * 1.2, 7, num_records),
        0,
        80,
    )

    schema = TableSchema(
        [
            quantitative("age"),
            quantitative("income"),
            quantitative("hours_per_week"),
            categorical("marital_status", MARITAL),
            categorical("education", EDUCATION),
        ]
    )
    return RelationalTable.from_columns(
        schema,
        [age, np.round(income, 0), np.round(hours, 1), marital, education],
    )


def main(num_records: int = 20_000) -> None:
    table = synthesize(num_records)

    # Round-trip through CSV, as a practitioner pulling from a warehouse
    # export would.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "census.csv"
        save_csv(table, path)
        table = load_csv(
            path, categorical=["marital_status", "education"]
        )
    print(f"mining {table.num_records} census records ...")

    config = MinerConfig(
        min_support=0.1,
        min_confidence=0.4,
        max_support=0.35,
        partial_completeness=2.5,
        max_quantitative_in_rule=2,
        interest_level=1.3,
    )
    result = QuantitativeMiner(table, config).mine()
    stats = result.stats
    print(
        f"{stats.num_rules} rules, {stats.num_interesting_rules} "
        f"interesting ({100 * stats.fraction_rules_interesting:.1f}%)\n"
    )

    print("Age-linked marriage rules (the paper's motivating pattern):")
    marriage_rules = [
        r
        for r in result.interesting_rules
        if any(it.attribute == 3 for it in r.consequent)
        and any(it.attribute == 0 for it in r.antecedent)
    ]
    print(result.describe_rules(marriage_rules, limit=8) or "  (none)")

    print("\nIncome rules with education in the antecedent:")
    income_rules = [
        r
        for r in result.interesting_rules
        if any(it.attribute == 4 for it in r.antecedent)
        and any(it.attribute == 1 for it in r.consequent)
    ]
    print(result.describe_rules(income_rules, limit=8) or "  (none)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20_000)

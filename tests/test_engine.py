"""Unit tests for the staged execution engine (`repro.engine`).

Covers the three engine layers in isolation — executors, record-range
shards, and the stage/engine contract — plus the configuration surface
(`ExecutionConfig`) and the miner-facing integration seams
(`build_engine_context`, `mine_quantitative_rules(executor=...)`,
CLI flags).
"""

import numpy as np
import pytest

from repro.core import (
    ExecutionConfig,
    ExecutionStats,
    MinerConfig,
    QuantitativeMiner,
    mine_quantitative_rules,
)
from repro.core.apriori_quant import build_engine_context
from repro.core.mapper import TableMapper
from repro.engine import (
    ExecutionEngine,
    ParallelExecutor,
    PipelineStage,
    SerialExecutor,
    ShardView,
    StageContext,
    StageError,
    TableShard,
    plan_shards,
    resolve_executor,
    shard_view,
    sharded_map,
)
from repro.table import RelationalTable, TableSchema, categorical, quantitative


def small_table(n=60, seed=0):
    rng = np.random.default_rng(seed)
    schema = TableSchema(
        [
            quantitative("age"),
            quantitative("income"),
            categorical("married", ("yes", "no")),
        ]
    )
    return RelationalTable.from_columns(
        schema,
        [
            rng.integers(20, 70, size=n).astype(float),
            rng.integers(10, 200, size=n).astype(float),
            rng.integers(0, 2, size=n),
        ],
    )


# ----------------------------------------------------------------------
# Shards
# ----------------------------------------------------------------------
class TestShards:
    def test_shards_cover_table_exactly(self):
        shards = plan_shards(100, shard_size=33)
        assert shards[0].start == 0
        assert shards[-1].stop == 100
        for prev, nxt in zip(shards, shards[1:]):
            assert prev.stop == nxt.start
        assert sum(s.num_records for s in shards) == 100

    def test_explicit_shard_size(self):
        shards = plan_shards(10, shard_size=4)
        assert [(s.start, s.stop) for s in shards] == [(0, 4), (4, 8), (8, 10)]

    def test_single_worker_defaults_to_one_shard(self):
        assert plan_shards(1000, num_workers=1) == (TableShard(0, 1000),)

    def test_multi_worker_default_layout_oversubscribes(self):
        shards = plan_shards(1000, num_workers=4)
        # two shards per worker so a fast worker can steal extra work
        assert len(shards) == 8
        assert shards[-1].stop == 1000

    def test_empty_table_yields_one_empty_shard(self):
        assert plan_shards(0) == (TableShard(0, 0),)
        assert plan_shards(0)[0].num_records == 0

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            TableShard(-1, 5)
        with pytest.raises(ValueError):
            TableShard(5, 4)

    def test_shard_view_slices_columns(self):
        cols = [np.arange(10), np.arange(10) * 2]
        view = ShardView(cols, [10, 20], 10)
        sub = shard_view(view, TableShard(3, 7))
        assert sub.num_records == 4
        assert sub.num_attributes == 2
        assert list(sub.column(0)) == [3, 4, 5, 6]
        assert list(sub.column(1)) == [6, 8, 10, 12]
        # cardinalities are table-global, not per-shard
        assert sub.cardinality(0) == 10
        assert sub.cardinality(1) == 20


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
def _square(x):
    return x * x


class TestExecutors:
    def test_serial_map_preserves_order(self):
        with SerialExecutor() as ex:
            assert ex.map(_square, [3, 1, 2]) == [9, 1, 4]
            assert ex.name == "serial"
            assert ex.num_workers == 1

    def test_parallel_map_preserves_order(self):
        with ParallelExecutor(num_workers=2) as ex:
            assert ex.map(_square, list(range(7))) == [
                x * x for x in range(7)
            ]

    def test_parallel_single_task_short_circuits(self):
        ex = ParallelExecutor(num_workers=2)
        assert ex.map(_square, [5]) == [25]
        assert ex._pool is None  # no pool spawned for one task
        ex.close()

    def test_parallel_close_is_idempotent(self):
        ex = ParallelExecutor(num_workers=2)
        ex.map(_square, [1, 2, 3])
        ex.close()
        ex.close()

    def test_parallel_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ParallelExecutor(num_workers=0)

    def test_resolve_executor(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        ex = resolve_executor("parallel", 3)
        assert isinstance(ex, ParallelExecutor)
        assert ex.num_workers == 3
        with pytest.raises(ValueError):
            resolve_executor("threads")


# ----------------------------------------------------------------------
# sharded_map
# ----------------------------------------------------------------------
def _sum_first_column(view, offset):
    return int(view.column(0).sum()) + offset


class TestShardedMap:
    def test_results_in_shard_order_and_merge_exactly(self):
        cols = [np.arange(100, dtype=np.int64)]
        view = ShardView(cols, [100], 100)
        shards = plan_shards(100, shard_size=17)
        partial = sharded_map(None, view, shards, _sum_first_column, 0)
        assert sum(partial) == int(np.arange(100).sum())

    def test_payload_reaches_workers(self):
        view = ShardView([np.zeros(4, dtype=np.int64)], [1], 4)
        out = sharded_map(None, view, plan_shards(4, 2), _sum_first_column, 7)
        assert out == [7, 7]

    def test_records_per_shard_seconds(self):
        stats = ExecutionStats(executor="serial", num_workers=1)
        view = ShardView([np.zeros(6, dtype=np.int64)], [1], 6)
        sharded_map(
            None,
            view,
            plan_shards(6, 2),
            _sum_first_column,
            0,
            stats=stats,
            stage="demo",
        )
        assert len(stats.stage_shard_seconds["demo"]) == 3
        assert stats.num_shard_tasks == 3
        assert stats.total_shard_seconds() >= 0.0
        assert stats.total_shard_seconds("demo") == stats.total_shard_seconds()

    def test_executor_and_inprocess_agree(self):
        cols = [np.arange(40, dtype=np.int64)]
        view = ShardView(cols, [40], 40)
        shards = plan_shards(40, shard_size=9)
        direct = sharded_map(None, view, shards, _sum_first_column, 1)
        with ParallelExecutor(num_workers=2) as ex:
            pooled = sharded_map(ex, view, shards, _sum_first_column, 1)
        assert direct == pooled


# ----------------------------------------------------------------------
# Stage / engine contract
# ----------------------------------------------------------------------
class _Producer(PipelineStage):
    name = "producer"
    outputs = ("value",)

    def run(self, context):
        return {"value": 41}


class _Consumer(PipelineStage):
    name = "consumer"
    inputs = ("value",)
    outputs = ("doubled",)

    def run(self, context):
        return {"doubled": context.artifacts["value"] * 2}


class _Liar(PipelineStage):
    name = "liar"
    outputs = ("promised",)

    def run(self, context):
        return {"something_else": 1}


class TestExecutionEngine:
    def test_artifacts_flow_between_stages(self):
        engine = ExecutionEngine()
        context = StageContext()
        artifacts = engine.run([_Producer(), _Consumer()], context)
        assert artifacts["value"] == 41
        assert artifacts["doubled"] == 82
        assert set(engine.stage_seconds) == {"producer", "consumer"}

    def test_missing_input_raises_stage_error(self):
        engine = ExecutionEngine()
        with pytest.raises(StageError, match="missing inputs"):
            engine.run([_Consumer()], StageContext())

    def test_undeclared_output_raises_stage_error(self):
        engine = ExecutionEngine()
        with pytest.raises(StageError, match="declared outputs"):
            engine.run([_Liar()], StageContext())

    def test_stage_seconds_accumulate_over_reruns(self):
        engine = ExecutionEngine()
        context = StageContext()
        first = engine.run_stage(_Producer(), context)
        second = engine.run_stage(_Producer(), context)
        assert engine.stage_seconds["producer"] == pytest.approx(
            first + second
        )

    def test_context_gets_backref_to_engine(self):
        engine = ExecutionEngine()
        context = StageContext()
        engine.run_stage(_Producer(), context)
        assert context.engine is engine


# ----------------------------------------------------------------------
# Configuration surface
# ----------------------------------------------------------------------
class TestExecutionConfig:
    def test_defaults_are_serial(self):
        cfg = ExecutionConfig()
        assert cfg.executor == "serial"
        assert cfg.resolved_num_workers == 1

    def test_serial_ignores_worker_count(self):
        assert ExecutionConfig(num_workers=8).resolved_num_workers == 1

    def test_parallel_resolves_worker_count(self):
        cfg = ExecutionConfig(executor="parallel", num_workers=3)
        assert cfg.resolved_num_workers == 3
        assert ExecutionConfig(executor="parallel").resolved_num_workers >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionConfig(executor="threads")
        with pytest.raises(ValueError):
            ExecutionConfig(num_workers=0)
        with pytest.raises(ValueError):
            ExecutionConfig(shard_size=0)

    def test_miner_config_normalizes_execution(self):
        assert MinerConfig().execution == ExecutionConfig()
        cfg = MinerConfig(execution={"executor": "parallel", "num_workers": 2})
        assert cfg.execution == ExecutionConfig("parallel", 2)
        with pytest.raises(TypeError):
            MinerConfig(execution="parallel")

    def test_flat_overrides_build_execution_block(self):
        table = small_table(40)
        result = mine_quantitative_rules(
            table, min_support=0.3, shard_size=11
        )
        assert result.config.execution.shard_size == 11

    def test_flat_overrides_conflict_with_execution_block(self):
        table = small_table(40)
        with pytest.raises(TypeError):
            mine_quantitative_rules(
                table,
                executor="parallel",
                execution=ExecutionConfig(),
            )


# ----------------------------------------------------------------------
# Miner integration
# ----------------------------------------------------------------------
class TestMinerIntegration:
    def test_build_engine_context_resolves_config(self):
        table = small_table(50)
        config = MinerConfig(
            min_support=0.3,
            execution=ExecutionConfig(shard_size=13),
        )
        mapper = TableMapper(table, config)
        engine, context = build_engine_context(mapper, config)
        try:
            assert isinstance(context.executor, SerialExecutor)
            assert all(s.num_records <= 13 for s in context.shards)
            assert context.shards[-1].stop == mapper.num_records
            assert context.execution_stats.num_shards == len(context.shards)
        finally:
            context.executor.close()

    def test_parallel_run_matches_serial(self):
        table = small_table(80, seed=3)
        common = dict(min_support=0.25, min_confidence=0.4, interest_level=1.1)
        serial = mine_quantitative_rules(table, **common)
        parallel = mine_quantitative_rules(
            table,
            executor="parallel",
            num_workers=2,
            shard_size=17,
            **common,
        )
        assert parallel.support_counts == serial.support_counts
        assert list(parallel.support_counts) == list(serial.support_counts)
        assert parallel.rules == serial.rules
        assert parallel.interesting_rules == serial.interesting_rules

    def test_stats_report_execution(self):
        table = small_table(60)
        config = MinerConfig(
            min_support=0.3,
            execution=ExecutionConfig(
                executor="parallel", num_workers=2, shard_size=15
            ),
        )
        result = QuantitativeMiner(table, config).mine()
        execution = result.stats.execution
        assert execution is not None
        assert execution.executor == "parallel"
        assert execution.num_workers == 2
        assert execution.num_shards == 4
        assert execution.num_shard_tasks > 0
        summary = result.stats.summary()
        assert "executor:" in summary
        assert "shard task(s)" in summary

    def test_cli_jobs_flag_implies_parallel(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["mine", "x.csv", "--jobs", "4", "--shard-size", "100"]
        )
        assert args.executor == "serial"  # flag default; _run_mine upgrades
        assert args.jobs == 4
        assert args.shard_size == 100

    def test_cli_executor_choices(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", "x.csv", "--executor", "gpu"])

"""Integration tests for repro.serve.MiningService (no sockets).

Contracts under test: submissions are durable before they mine,
server-mined rules are bit-identical to the direct miner, event streams
replay the full lifecycle and end with the rules, cancellation and
timeouts journal a reason, and a store left by a dead service recovers
its unfinished jobs.
"""

import time

import pytest

from repro.core import MinerConfig, mine_quantitative_rules
from repro.core.export import result_to_document
from repro.obs import Observability
from repro.serve import (
    DiskJobStore,
    JobRecord,
    MiningService,
    ServiceClosed,
    TableRegistry,
)

CSV = "age,income,married\n" + "\n".join(
    f"{20 + i % 30},{1000 + 137 * (i % 17)},{'yes' if i % 3 else 'no'}"
    for i in range(60)
)
CONFIG = {"min_support": 0.2, "min_confidence": 0.5, "max_support": 0.5}


def wait_done(service, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = service.get_record(job_id)
        if record is not None and record.status not in (
            "queued", "running"
        ):
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


@pytest.fixture
def service():
    svc = MiningService(observability=Observability()).start()
    svc.tables.put_csv("people", CSV, categorical=["married"])
    yield svc
    svc.shutdown(drain_seconds=0)


class TestSubmitAndComplete:
    def test_job_completes_with_stats(self, service):
        record = service.submit_job(table_name="people", config=CONFIG)
        # The job may already be running (or even done) by the time the
        # handle returns; what matters is that the submission is durable.
        assert service.get_record(record.job_id) is not None
        done = wait_done(service, record.job_id)
        assert done.status == "completed"
        assert done.started_at is not None
        assert done.finished_at is not None
        assert done.stats["status"] == "completed"
        assert done.stats["num_rules"] > 0

    def test_rules_bit_identical_to_direct_miner(self, service):
        record = service.submit_job(table_name="people", config=CONFIG)
        wait_done(service, record.job_id)
        document = service.result_document(record.job_id)

        direct = mine_quantitative_rules(
            service.tables.get("people"), MinerConfig.from_dict(CONFIG)
        )
        expected = result_to_document(direct)
        assert document["rules"] == expected["rules"]
        assert document["num_records"] == expected["num_records"]
        assert document["config"] == expected["config"]

    def test_inline_csv_registers_content_named_table(self, service):
        record = service.submit_job(
            csv=CSV, categorical=["married"], config=CONFIG
        )
        assert record.table_ref.startswith("inline-")
        assert record.table_ref in service.tables
        done = wait_done(service, record.job_id)
        assert done.status == "completed"

    def test_event_stream_ends_with_rules(self, service):
        record = service.submit_job(table_name="people", config=CONFIG)
        events = list(service.event_stream(record.job_id).subscribe())
        kinds = [e["event"] for e in events]
        assert kinds[0] == "status"
        assert "stage" in kinds
        assert kinds[-1] == "completed"
        assert events[-1]["result"]["format"] == "repro.mining_result"
        assert events[-1]["stats"]["num_rules"] > 0
        # The stream replays: a late subscriber sees the same history.
        replay = list(service.event_stream(record.job_id).subscribe())
        assert replay == events

    def test_unknown_table_rejected_before_journaling(self, service):
        with pytest.raises(KeyError):
            service.submit_job(table_name="ghost", config=CONFIG)
        assert service.list_records() == []

    def test_traversal_job_id_rejected_before_journaling(self, service):
        # Defense in depth below the HTTP layer: library callers get
        # the same charset check parse_submission applies.
        with pytest.raises(ValueError, match="job id"):
            service.submit_job(
                table_name="people",
                config=CONFIG,
                job_id="../../../../tmp/evil",
            )
        assert service.list_records() == []

    def test_bad_config_rejected_before_journaling(self, service):
        with pytest.raises(ValueError):
            service.submit_job(
                table_name="people", config={"min_support": 2.0}
            )
        assert service.list_records() == []

    def test_submit_after_shutdown_rejected(self):
        svc = MiningService().start()
        svc.shutdown(drain_seconds=0)
        with pytest.raises(ServiceClosed):
            svc.submit_job(csv=CSV, config=CONFIG)


class TestCancelAndTimeout:
    def test_cancel_queued_job_records_reason(self):
        svc = MiningService(max_concurrent_jobs=1).start()
        try:
            svc.tables.put_csv("people", CSV, categorical=["married"])
            first = svc.submit_job(table_name="people", config=CONFIG)
            second = svc.submit_job(table_name="people", config=CONFIG)
            assert svc.cancel_job(second.job_id, reason="changed my mind")
            done = wait_done(svc, second.job_id)
            assert done.status == "cancelled"
            assert done.cancel_reason == "changed my mind"
            assert wait_done(svc, first.job_id).status == "completed"
        finally:
            svc.shutdown(drain_seconds=0)

    def test_cancel_unknown_job_returns_false(self, service):
        assert not service.cancel_job("ghost")

    def test_timeout_journals_reason(self, service):
        record = service.submit_job(
            table_name="people", config=CONFIG, timeout=0.0001
        )
        done = wait_done(service, record.job_id)
        assert done.status == "timed_out"
        assert "wall-clock budget" in done.cancel_reason
        assert done.timeout == 0.0001

    def test_terminal_stream_event_carries_reason(self, service):
        record = service.submit_job(
            table_name="people", config=CONFIG, timeout=0.0001
        )
        events = list(service.event_stream(record.job_id).subscribe())
        assert events[-1]["event"] == "timed_out"
        assert "wall-clock budget" in events[-1]["cancel_reason"]


class TestRecovery:
    def seed_dead_server(self, tmp_path):
        """A store + table dir as a killed server would leave them."""
        store = DiskJobStore(tmp_path / "store")
        tables = TableRegistry(tmp_path / "tables")
        tables.put_csv("people", CSV, categorical=["married"])
        store.create(
            JobRecord(
                job_id="job-queued",
                table_ref="people",
                config=CONFIG,
                submitted_at=time.time(),
            )
        )
        store.create(
            JobRecord(
                job_id="job-running",
                table_ref="people",
                config=CONFIG,
                status="running",
                submitted_at=time.time(),
            )
        )
        store.create(
            JobRecord(
                job_id="job-done",
                table_ref="people",
                config=CONFIG,
                status="completed",
                submitted_at=time.time(),
            )
        )
        store.close()
        return tmp_path

    def test_recover_requeues_and_completes(self, tmp_path):
        root = self.seed_dead_server(tmp_path)
        svc = MiningService(
            store=DiskJobStore(root / "store"),
            tables=TableRegistry(root / "tables"),
        ).start()
        try:
            requeued = svc.recover()
            assert sorted(r.job_id for r in requeued) == [
                "job-queued", "job-running",
            ]
            for job_id in ("job-queued", "job-running"):
                done = wait_done(svc, job_id)
                assert done.status == "completed"
                assert done.recovered == 1
                assert svc.result_document(job_id) is not None
            # The completed job was left alone.
            assert svc.get_record("job-done").recovered == 0
        finally:
            svc.shutdown(drain_seconds=0)

    def test_recovered_rules_bit_identical(self, tmp_path):
        root = self.seed_dead_server(tmp_path)
        svc = MiningService(
            store=DiskJobStore(root / "store"),
            tables=TableRegistry(root / "tables"),
        ).start()
        try:
            svc.recover()
            wait_done(svc, "job-queued")
            document = svc.result_document("job-queued")
            direct = mine_quantitative_rules(
                svc.tables.get("people"), MinerConfig.from_dict(CONFIG)
            )
            assert document["rules"] == result_to_document(direct)["rules"]
        finally:
            svc.shutdown(drain_seconds=0)

    def test_recovery_fails_job_with_missing_table(self, tmp_path):
        store = DiskJobStore(tmp_path / "store")
        store.create(
            JobRecord(
                job_id="orphan", table_ref="ghost", config=CONFIG,
                submitted_at=time.time(),
            )
        )
        store.close()
        svc = MiningService(store=DiskJobStore(tmp_path / "store")).start()
        try:
            assert svc.recover() == []
            record = svc.get_record("orphan")
            assert record.status == "failed"
            assert "no longer registered" in record.error
        finally:
            svc.shutdown(drain_seconds=0)

    def test_shutdown_interrupts_unfinished_jobs(self, tmp_path):
        store_dir = tmp_path / "store"
        tables_dir = tmp_path / "tables"
        svc = MiningService(
            store=DiskJobStore(store_dir),
            tables=TableRegistry(tables_dir),
            max_concurrent_jobs=1,
        ).start()
        svc.tables.put_csv("people", CSV, categorical=["married"])
        # Queue several; with concurrency 1 most are still pending when
        # the drain deadline (0s) fires, so shutdown must cancel them.
        ids = [
            svc.submit_job(table_name="people", config=CONFIG).job_id
            for _ in range(4)
        ]
        svc.shutdown(drain_seconds=0)

        reopened = DiskJobStore(store_dir)
        statuses = {
            job_id: reopened.get(job_id).status for job_id in ids
        }
        assert set(statuses.values()) <= {"completed", "interrupted"}
        interrupted = [
            j for j, s in statuses.items() if s == "interrupted"
        ]
        assert interrupted, f"expected interrupted jobs, got {statuses}"
        reopened.close()

        # Round trip: a fresh service recovers and finishes them all.
        svc2 = MiningService(
            store=DiskJobStore(store_dir),
            tables=TableRegistry(tables_dir),
        ).start()
        try:
            requeued = svc2.recover()
            assert sorted(r.job_id for r in requeued) == sorted(interrupted)
            for job_id in ids:
                assert wait_done(svc2, job_id).status == "completed"
        finally:
            svc2.shutdown(drain_seconds=0)

    def test_cold_event_stream_replays_stored_outcome(self, tmp_path):
        root = self.seed_dead_server(tmp_path)
        store = DiskJobStore(root / "store")
        store.save_result("job-done", {"format": "repro.mining_result"})
        svc = MiningService(
            store=store, tables=TableRegistry(root / "tables")
        ).start()
        try:
            events = list(svc.event_stream("job-done").subscribe())
            assert [e["event"] for e in events] == [
                "status", "completed",
            ]
            assert events[-1]["result"] == {
                "format": "repro.mining_result"
            }
            with pytest.raises(KeyError):
                svc.event_stream("ghost")
        finally:
            svc.shutdown(drain_seconds=0)


class TestRetention:
    def test_finished_job_handles_released(self, service):
        record = service.submit_job(table_name="people", config=CONFIG)
        wait_done(service, record.job_id)
        # The MiningJob handle (holding the full MiningResult) must not
        # outlive finalization; the outcome lives in the store.
        deadline = time.monotonic() + 10
        while record.job_id in service._jobs:
            assert time.monotonic() < deadline, "job handle never evicted"
            time.sleep(0.02)
        assert service.result_document(record.job_id) is not None

    def test_stream_retention_capped_with_store_fallback(self):
        svc = MiningService(retain_finished=1).start()
        try:
            svc.tables.put_csv("people", CSV, categorical=["married"])
            first = svc.submit_job(table_name="people", config=CONFIG)
            wait_done(svc, first.job_id)
            second = svc.submit_job(table_name="people", config=CONFIG)
            wait_done(svc, second.job_id)
            deadline = time.monotonic() + 10
            while first.job_id in svc._streams:
                assert time.monotonic() < deadline, "stream never evicted"
                time.sleep(0.02)
            # Late subscribers of the evicted job still end up holding
            # the rules, via the store-synthesized replay.
            events = list(svc.event_stream(first.job_id).subscribe())
            assert events[-1]["event"] == "completed"
            assert events[-1]["result"]["format"] == "repro.mining_result"
            runner = svc._runner
            assert len(runner.jobs) <= 1
            assert len(runner.stats.jobs) <= 1
            assert runner.stats.completed == 2
        finally:
            svc.shutdown(drain_seconds=0)

    def test_cold_unfinished_record_stream_closes(self, tmp_path):
        # A job journaled 'interrupted' by a dead server, viewed by a
        # new server started WITHOUT --recover: nothing in this process
        # will ever append to its stream, so a subscriber must drain
        # the synthesized replay and return instead of blocking the
        # handler thread forever.
        store = DiskJobStore(tmp_path / "store")
        store.create(
            JobRecord(
                job_id="stranded",
                table_ref="people",
                config=CONFIG,
                status="interrupted",
                submitted_at=time.time(),
                cancel_reason="server shutdown",
            )
        )
        store.close()
        svc = MiningService(store=DiskJobStore(tmp_path / "store")).start()
        try:
            stream = svc.event_stream("stranded")
            assert stream.closed
            events = list(stream.subscribe())
            assert [e["event"] for e in events] == ["status"]
            assert events[0]["status"] == "interrupted"
        finally:
            svc.shutdown(drain_seconds=0)


class TestObservability:
    def test_jobs_recorded_in_shared_registry(self, service):
        record = service.submit_job(table_name="people", config=CONFIG)
        wait_done(service, record.job_id)
        snapshot = service.observability.metrics.snapshot()
        assert snapshot["counters"]["jobs.completed"] >= 1
        kinds = {
            s.kind for s in service.observability.tracer.spans()
        }
        assert "job" in kinds

"""Unit tests for the RuleSet query API (repro.core.ruleset)."""

import pytest

from repro.core import MinerConfig, QuantitativeMiner
from repro.core.ruleset import RuleSet
from repro.data import age_partition_edges, people_table


@pytest.fixture(scope="module")
def result():
    config = MinerConfig(
        min_support=0.4,
        min_confidence=0.5,
        max_support=0.6,
        num_partitions={"Age": age_partition_edges()},
    )
    return QuantitativeMiner(people_table(), config).mine()


@pytest.fixture
def rules(result):
    return RuleSet.from_result(result, interesting_only=False)


class TestMetrics:
    def test_lift_of_exact_rule(self, result, rules):
        # <NumCars: 2> => <Married: Yes>: conf 100%, Pr(Yes) = 60%.
        rule = next(
            r
            for r in rules
            if r.antecedent[0].attribute == 2
            and r.antecedent[0].lo == 2
            and len(r.consequent) == 1
            and r.consequent[0].attribute == 1
            and r.consequent[0].lo == 0
        )
        m = rules.metrics(rule)
        assert m.lift == pytest.approx(1.0 / 0.6)
        # leverage = 0.4 - 0.4*0.6 = 0.16
        assert m.leverage == pytest.approx(0.16)
        assert m.conviction == float("inf")

    def test_lift_of_independent_like_rule(self, rules):
        for rule in rules:
            m = rules.metrics(rule)
            assert m.lift > 0
            assert -1.0 <= m.leverage <= 1.0

    def test_no_support_lookup_raises(self, rules):
        bare = RuleSet(list(rules))
        with pytest.raises(ValueError, match="support lookup"):
            bare.metrics(rules[0])


class TestQueries:
    def test_involving(self, rules):
        age_rules = rules.involving(0)
        assert len(age_rules) > 0
        for rule in age_rules:
            attrs = {it.attribute for it in rule.antecedent + rule.consequent}
            assert 0 in attrs

    def test_consequent_and_antecedent_filters(self, rules):
        predict_married = rules.with_consequent_attribute(1)
        for rule in predict_married:
            assert any(it.attribute == 1 for it in rule.consequent)
        from_age = rules.with_antecedent_attribute(0)
        for rule in from_age:
            assert any(it.attribute == 0 for it in rule.antecedent)

    def test_threshold_filters_chain(self, rules):
        strong = rules.min_support(0.4).min_confidence(0.9)
        assert len(strong) < len(rules)
        for rule in strong:
            assert rule.support >= 0.4
            assert rule.confidence >= 0.9

    def test_min_lift(self, rules):
        lifted = rules.min_lift(1.3)
        for rule in lifted:
            assert rules.metrics(rule).lift >= 1.3

    def test_matching_predicate(self, rules):
        singles = rules.matching(lambda r: len(r.antecedent) == 1)
        assert all(len(r.antecedent) == 1 for r in singles)


class TestOrdering:
    def test_sorted_by_confidence(self, rules):
        ordered = list(rules.sorted_by("confidence"))
        values = [r.confidence for r in ordered]
        assert values == sorted(values, reverse=True)

    def test_sorted_by_lift(self, rules):
        ordered = list(rules.sorted_by("lift"))
        values = [rules.metrics(r).lift for r in ordered]
        assert values == sorted(values, reverse=True)

    def test_unknown_key_rejected(self, rules):
        with pytest.raises(ValueError, match="sort key"):
            rules.sorted_by("beauty")

    def test_top(self, rules):
        assert len(rules.top(3)) == 3

    def test_top_per_consequent(self, rules):
        best = rules.top_per_consequent(1)
        consequents = [r.consequent for r in best]
        assert len(consequents) == len(set(consequents))
        # Each kept rule is the best for its consequent.
        for rule in best:
            rivals = [
                r for r in rules if r.consequent == rule.consequent
            ]
            assert rule.confidence == max(r.confidence for r in rivals)


class TestOutput:
    def test_describe_includes_lift(self, rules):
        text = rules.describe(limit=3)
        assert "lift=" in text
        assert len(text.splitlines()) == 3

    def test_container_protocol(self, rules):
        assert len(rules) == len(list(rules))
        assert rules[0] in list(rules)
        assert "RuleSet" in repr(rules)

    def test_from_result_interesting_default(self, result):
        interesting = RuleSet.from_result(result)
        assert len(interesting) == len(result.interesting_rules)

"""End-to-end tests reproducing the paper's worked examples.

Figure 1 presents the People table and two rules; Figure 3 walks the whole
problem decomposition on the same data with minimum support 40% and
minimum confidence 50%.  These tests pin the pipeline to the paper's
printed numbers.
"""

import numpy as np
import pytest

from repro.core import (
    Item,
    MinerConfig,
    QuantitativeMiner,
    make_itemset,
)
from repro.data import (
    EXAMPLE_MIN_CONFIDENCE,
    EXAMPLE_MIN_SUPPORT,
    age_partition_edges,
    people_table,
)


@pytest.fixture(scope="module")
def result():
    config = MinerConfig(
        min_support=EXAMPLE_MIN_SUPPORT,
        min_confidence=EXAMPLE_MIN_CONFIDENCE,
        max_support=0.6,
        num_partitions={"Age": age_partition_edges()},
    )
    return QuantitativeMiner(people_table(), config).mine()


def rule_map(rules):
    return {(r.antecedent, r.consequent): r for r in rules}


AGE_20_29 = Item(0, 0, 1)
AGE_30_39 = Item(0, 2, 3)
MARRIED_YES = Item(1, 0, 0)
MARRIED_NO = Item(1, 1, 1)
CARS_0_1 = Item(2, 0, 1)
CARS_2 = Item(2, 2, 2)


class TestFigure3Mapping:
    def test_age_mapped_per_figure_3e(self, result):
        # Ages 23, 25, 29, 34, 38 -> intervals 1, 2, 2, 3, 4 (1-based).
        np.testing.assert_array_equal(
            result.mapper.column(0), [0, 1, 1, 2, 3]
        )

    def test_married_mapping(self, result):
        # Yes -> 0, No -> 1 under our domain ordering.
        np.testing.assert_array_equal(
            result.mapper.column(1), [1, 0, 1, 0, 0]
        )


class TestFigure3FrequentItemsets:
    def test_sample_itemsets_of_figure_3f(self, result):
        support = result.support_counts
        # {<Age: 30..39>} support 2 records.
        assert support[make_itemset([AGE_30_39])] == 2
        # {<Married: Yes>} support 3.
        assert support[make_itemset([MARRIED_YES])] == 3
        # {<Married: No>} support 2.
        assert support[make_itemset([MARRIED_NO])] == 2
        # {<NumCars: 0..1>} support 3.
        assert support[make_itemset([CARS_0_1])] == 3
        # {<Age: 30..39>, <Married: Yes>} support 2.
        assert support[make_itemset([AGE_30_39, MARRIED_YES])] == 2

    def test_all_frequent_itemsets_meet_minsup(self, result):
        for count in result.support_counts.values():
            assert count >= 2

    def test_downward_closure(self, result):
        frequent = set(result.support_counts)
        for itemset in frequent:
            for drop in range(len(itemset)):
                subset = itemset[:drop] + itemset[drop + 1:]
                if subset:
                    assert subset in frequent


class TestFigure1Rules:
    def test_headline_rule(self, result):
        rules = rule_map(result.rules)
        key = (
            make_itemset([AGE_30_39, MARRIED_YES]),
            make_itemset([CARS_2]),
        )
        assert key in rules
        assert rules[key].support == pytest.approx(0.4)
        assert rules[key].confidence == pytest.approx(1.0)

    def test_cars_implies_unmarried_rule(self, result):
        rules = rule_map(result.rules)
        key = (make_itemset([CARS_0_1]), make_itemset([MARRIED_NO]))
        assert key in rules
        assert rules[key].support == pytest.approx(0.4)
        assert rules[key].confidence == pytest.approx(2 / 3)

    def test_all_rules_meet_thresholds(self, result):
        for rule in result.rules:
            assert rule.support >= EXAMPLE_MIN_SUPPORT - 1e-12
            assert rule.confidence >= EXAMPLE_MIN_CONFIDENCE - 1e-12

    def test_rule_support_is_itemset_support(self, result):
        for rule in result.rules:
            assert rule.support == pytest.approx(
                result.support(rule.itemset)
            )

    def test_confidence_consistency(self, result):
        for rule in result.rules:
            expected = result.support(rule.itemset) / result.support(
                rule.antecedent
            )
            assert rule.confidence == pytest.approx(expected)


class TestRendering:
    def test_headline_rule_renders_with_raw_values(self, result):
        rules = rule_map(result.rules)
        key = (
            make_itemset([AGE_30_39, MARRIED_YES]),
            make_itemset([CARS_2]),
        )
        text = result.describe(rules[key])
        assert "<Age: [30, 40]>" in text
        assert "<Married: Yes>" in text
        assert "<NumCars: 2>" in text
        assert "sup=40.0%" in text
        assert "conf=100.0%" in text

    def test_describe_rules_limit(self, result):
        text = result.describe_rules(limit=3)
        assert len(text.splitlines()) == 3

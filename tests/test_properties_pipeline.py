"""Property-based whole-pipeline tests.

The diagnostics checker (`repro.core.diagnostics`) re-derives every
invariant of a mining result from raw data; running it over randomized
tables and configurations turns the entire pipeline into one big
property: *whatever* the input, the result must be internally
consistent.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MinerConfig, QuantitativeMiner, Taxonomy
from repro.core.diagnostics import check_result
from repro.table import RelationalTable, TableSchema, categorical, quantitative


def build_table(x_values, y_values, c_values):
    schema = TableSchema(
        [
            quantitative("x"),
            quantitative("y"),
            categorical("c", ("a", "b", "d")),
        ]
    )
    return RelationalTable.from_columns(
        schema,
        [
            np.array(x_values, dtype=float),
            np.array(y_values, dtype=float),
            np.array(c_values, dtype=np.int64) % 3,
        ],
    )


draws = st.lists(st.integers(0, 11), min_size=40, max_size=120)


class TestPipelineConsistency:
    @given(
        draws,
        draws,
        draws,
        st.floats(0.1, 0.45),
        st.floats(0.3, 0.9),
        st.sampled_from(["equidepth", "equiwidth", "cluster"]),
        st.sampled_from(["array", "auto"]),
        st.one_of(st.none(), st.floats(1.05, 2.0)),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_result_passes_diagnostics(
        self, xs, ys, cs, minsup, maxsup, method, backend, interest
    ):
        n = min(len(xs), len(ys), len(cs))
        table = build_table(xs[:n], ys[:n], cs[:n])
        config = MinerConfig(
            min_support=minsup,
            min_confidence=0.3,
            max_support=maxsup,
            partial_completeness=3.0,
            partition_method=method,
            counting=backend,
            interest_level=interest,
        )
        result = QuantitativeMiner(table, config).mine()
        report = check_result(result, sample_limit=None)
        assert report.ok, report.render()

    @given(draws, draws, draws, st.floats(0.15, 0.4))
    @settings(max_examples=15, deadline=None)
    def test_backends_agree_end_to_end(self, xs, ys, cs, minsup):
        n = min(len(xs), len(ys), len(cs))
        table = build_table(xs[:n], ys[:n], cs[:n])
        base = dict(
            min_support=minsup,
            min_confidence=0.3,
            max_support=0.7,
            partial_completeness=3.0,
        )
        reference = QuantitativeMiner(
            table, MinerConfig(**base, counting="array")
        ).mine()
        for backend in ("rtree", "direct"):
            other = QuantitativeMiner(
                table, MinerConfig(**base, counting=backend)
            ).mine()
            assert other.support_counts == reference.support_counts
            assert other.rules == reference.rules


class TestTaxonomyProperties:
    @given(draws, st.floats(0.05, 0.3))
    @settings(max_examples=20, deadline=None)
    def test_node_support_is_sum_of_leaf_supports(self, cs, minsup):
        taxonomy = Taxonomy({"a": "root", "b": "root", "d": "root"})
        schema = TableSchema([categorical("c", ("a", "b", "d"))])
        codes = np.array(cs, dtype=np.int64) % 3
        table = RelationalTable.from_columns(schema, [codes])
        config = MinerConfig(
            min_support=minsup,
            min_confidence=0.0,
            max_support=1.0,
            taxonomies={"c": taxonomy},
        )
        result = QuantitativeMiner(table, config).mine()
        # Root item covers all leaves: its count equals the table size.
        root_lo, root_hi = taxonomy.node_range("root")
        from repro.core import Item

        root_key = (Item(0, root_lo, root_hi),)
        if root_key in result.support_counts:
            assert result.support_counts[root_key] == len(table)
        # Every frequent itemset passes diagnostics with the taxonomy.
        report = check_result(result, sample_limit=None)
        assert report.ok, report.render()

    @given(draws, draws)
    @settings(max_examples=15, deadline=None)
    def test_taxonomy_mining_consistent_with_recount(self, cs, ys):
        taxonomy = Taxonomy(
            {"a": "left", "b": "left", "d": "right_only"}
        )
        n = min(len(cs), len(ys))
        schema = TableSchema(
            [categorical("c", ("a", "b", "d")), quantitative("y")]
        )
        table = RelationalTable.from_columns(
            schema,
            [
                np.array(cs[:n], dtype=np.int64) % 3,
                np.array(ys[:n], dtype=float),
            ],
        )
        config = MinerConfig(
            min_support=0.15,
            min_confidence=0.2,
            max_support=0.9,
            partial_completeness=3.0,
            taxonomies={"c": taxonomy},
        )
        result = QuantitativeMiner(table, config).mine()
        report = check_result(result, sample_limit=None)
        assert report.ok, report.render()

"""Property-based tests for serialization and taxonomy construction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Item, QuantitativeRule, Taxonomy, make_itemset
from repro.core.export import rules_from_json, rules_to_json

# ----------------------------------------------------------------------
# Random rules
# ----------------------------------------------------------------------
bounds = st.tuples(st.integers(0, 30), st.integers(0, 30)).map(
    lambda t: (min(t), max(t))
)


@st.composite
def rules(draw):
    num_ant = draw(st.integers(1, 3))
    num_con = draw(st.integers(1, 2))
    attrs = draw(
        st.lists(
            st.integers(0, 9),
            min_size=num_ant + num_con,
            max_size=num_ant + num_con,
            unique=True,
        )
    )
    items = [
        Item(a, *draw(bounds)) for a in attrs
    ]
    support = draw(st.floats(0.01, 1.0))
    confidence = draw(st.floats(0.01, 1.0))
    return QuantitativeRule(
        antecedent=make_itemset(items[:num_ant]),
        consequent=make_itemset(items[num_ant:]),
        support=support,
        confidence=max(confidence, support),
    )


class TestExportRoundTrip:
    @given(st.lists(rules(), max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip_is_identity(self, rule_list):
        text = rules_to_json(rule_list, metadata={"n": len(rule_list)})
        restored, metadata = rules_from_json(text)
        assert restored == rule_list
        assert metadata == {"n": len(rule_list)}


# ----------------------------------------------------------------------
# Random taxonomies (trees over integer-labelled nodes)
# ----------------------------------------------------------------------
@st.composite
def tree_edges(draw):
    """A random rooted forest as child->parent edges over ints."""
    size = draw(st.integers(2, 25))
    parents = {}
    for node in range(1, size):
        parents[node] = draw(st.integers(0, node - 1))
    return {f"n{c}": f"n{p}" for c, p in parents.items()}


class TestTaxonomyProperties:
    @given(tree_edges())
    @settings(max_examples=80, deadline=None)
    def test_every_node_covers_exactly_its_descendant_leaves(self, edges):
        taxonomy = Taxonomy(edges)
        leaves = taxonomy.leaves_in_order()
        # Recover descendants from the raw edges.
        children: dict = {}
        for child, parent in edges.items():
            children.setdefault(parent, []).append(child)

        def descendant_leaves(node):
            kids = children.get(node)
            if not kids:
                return {node}
            out = set()
            for kid in kids:
                out |= descendant_leaves(kid)
            return out

        all_nodes = set(edges) | set(children)
        for node in all_nodes:
            lo, hi = taxonomy.node_range(node)
            covered = set(leaves[lo:hi + 1])
            assert covered == descendant_leaves(node), node

    @given(tree_edges())
    @settings(max_examples=80, deadline=None)
    def test_ranges_are_contiguous_and_nested(self, edges):
        taxonomy = Taxonomy(edges)
        for child, parent in edges.items():
            c_lo, c_hi = taxonomy.node_range(child)
            p_lo, p_hi = taxonomy.node_range(parent)
            assert p_lo <= c_lo <= c_hi <= p_hi

    @given(tree_edges())
    @settings(max_examples=40, deadline=None)
    def test_leaf_order_covers_every_leaf_once(self, edges):
        taxonomy = Taxonomy(edges)
        leaves = taxonomy.leaves_in_order()
        assert len(set(leaves)) == len(leaves)
        parents = set(edges.values())
        expected_leaves = {
            node for node in set(edges) | parents if node not in parents
        }
        assert set(leaves) == expected_leaves

"""Unit tests for repro.core.partial_completeness (Section 3)."""

import math

import pytest

from repro.core import (
    Item,
    completeness_from_partitioning,
    is_k_complete,
    make_itemset,
    required_intervals,
)


class TestRequiredIntervals:
    def test_equation_two(self):
        # 2n / (m (K-1)): n=5, m=0.2, K=2 -> 50.
        assert required_intervals(5, 0.2, 2.0) == 50

    def test_paper_regimes(self):
        # The evaluation sweeps K in {1.5, 2, 3, 5} at minsup 20%, n=5.
        assert required_intervals(5, 0.2, 1.5) == 100
        assert required_intervals(5, 0.2, 3.0) == 25
        assert required_intervals(5, 0.2, 5.0) == 13  # 12.5 rounded up

    def test_rounds_up(self):
        exact = (2 * 3) / (0.3 * 0.7)
        assert required_intervals(3, 0.3, 1.7) == math.ceil(exact)

    def test_zero_quantitative_attributes(self):
        assert required_intervals(0, 0.2, 2.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            required_intervals(-1, 0.2, 2.0)
        with pytest.raises(ValueError):
            required_intervals(2, 0.0, 2.0)
        with pytest.raises(ValueError):
            required_intervals(2, 0.2, 1.0)


class TestCompletenessFromPartitioning:
    def test_equation_one(self):
        # K = 1 + 2 n s / m: n=5, s=0.02, m=0.2 -> 2.0.
        assert completeness_from_partitioning(0.02, 0.2, 5) == pytest.approx(
            2.0
        )

    def test_no_loss_when_all_singletons(self):
        assert completeness_from_partitioning(0.0, 0.2, 5) == 1.0

    def test_inverse_of_equation_two(self):
        # Partition per Equation 2, assume equi-depth support 1/intervals,
        # then Equation 1 should give back (about) the requested K.
        n, m, k = 4, 0.25, 2.5
        intervals = required_intervals(n, m, k)
        s = 1.0 / intervals
        realized = completeness_from_partitioning(s, m, n)
        assert realized <= k + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            completeness_from_partitioning(1.5, 0.2, 5)
        with pytest.raises(ValueError):
            completeness_from_partitioning(0.5, 0.0, 5)
        with pytest.raises(ValueError):
            completeness_from_partitioning(0.5, 0.2, -1)


class TestIsKComplete:
    """The worked example of Section 3.1."""

    def setup_method(self):
        # Itemsets 1..7 of the paper (attribute 0 = age, 1 = cars).
        self.c = {
            make_itemset([Item(0, 20, 30)]): 0.05,
            make_itemset([Item(0, 20, 40)]): 0.06,
            make_itemset([Item(0, 20, 50)]): 0.08,
            make_itemset([Item(1, 1, 2)]): 0.05,
            make_itemset([Item(1, 1, 3)]): 0.06,
            make_itemset([Item(0, 20, 30), Item(1, 1, 2)]): 0.04,
            make_itemset([Item(0, 20, 40), Item(1, 1, 3)]): 0.05,
        }
        keys = list(self.c)
        self.by_number = dict(enumerate(keys, start=1))

    def _subset(self, *numbers):
        return {
            self.by_number[i]: self.c[self.by_number[i]] for i in numbers
        }

    def test_paper_example_2357_is_15_complete(self):
        p = self._subset(2, 3, 5, 7)
        assert is_k_complete(p, self.c, 1.5)

    def test_paper_example_357_is_not_15_complete(self):
        # For itemset 1, the only generalization among {3, 5, 7} is 3,
        # whose support is 1.6x > 1.5x itemset 1's.
        p = self._subset(3, 5, 7)
        assert not is_k_complete(p, self.c, 1.5)

    def test_full_set_is_1_complete(self):
        assert is_k_complete(self.c, self.c, 1.0)

    def test_p_must_be_subset_of_c(self):
        extra = {make_itemset([Item(2, 0, 0)]): 0.5}
        assert not is_k_complete(extra, self.c, 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            is_k_complete({}, {}, 0.5)

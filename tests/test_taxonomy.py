"""Tests for taxonomy support (repro.core.taxonomy + integration).

Section 1.1: categorical values are never combined *unless* a taxonomy
exists, in which case the hierarchy's interior nodes act like ranges over
the attribute ([SA95]/[HF95]).  Our encoding makes that literal: leaves
get DFS-ordered codes, so an interior node is a contiguous code range.
"""

import numpy as np
import pytest

from repro.core import (
    Item,
    MinerConfig,
    QuantitativeMiner,
    TableMapper,
    Taxonomy,
    find_frequent_items,
    make_itemset,
)
from repro.table import RelationalTable, TableSchema, categorical, quantitative


@pytest.fixture
def clothes():
    # The [SA95] running example: clothes -> outerwear -> {jacket,
    # ski_pants}; clothes -> shirt.
    return Taxonomy(
        {
            "jacket": "outerwear",
            "ski_pants": "outerwear",
            "outerwear": "clothes",
            "shirt": "clothes",
        }
    )


class TestTaxonomy:
    def test_leaf_order_is_dfs(self, clothes):
        assert clothes.leaves_in_order() == ("jacket", "ski_pants", "shirt")

    def test_node_ranges_contiguous(self, clothes):
        assert clothes.node_range("outerwear") == (0, 1)
        assert clothes.node_range("clothes") == (0, 2)
        assert clothes.node_range("jacket") == (0, 0)

    def test_range_name(self, clothes):
        assert clothes.range_name(0, 1) == "outerwear"
        assert clothes.range_name(0, 2) == "clothes"
        assert clothes.range_name(1, 2) is None

    def test_ancestors(self, clothes):
        assert clothes.ancestors("jacket") == ["outerwear", "clothes"]
        assert clothes.ancestors("clothes") == []

    def test_interior_nodes_and_leaves(self, clothes):
        assert set(clothes.interior_nodes()) == {"outerwear", "clothes"}
        assert clothes.is_leaf("shirt")
        assert not clothes.is_leaf("clothes")

    def test_combinable_ranges(self, clothes):
        assert clothes.combinable_ranges() == [(0, 1), (0, 2)]

    def test_unknown_node_raises(self, clothes):
        with pytest.raises(KeyError, match="not in this taxonomy"):
            clothes.node_range("hat")

    def test_contains(self, clothes):
        assert "outerwear" in clothes
        assert "hat" not in clothes

    def test_forest_with_two_roots(self):
        t = Taxonomy({"a": "left", "b": "left", "c": "right", "d": "right"})
        assert t.leaves_in_order() == ("a", "b", "c", "d")
        assert t.node_range("left") == (0, 1)
        assert t.node_range("right") == (2, 3)

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            Taxonomy({"a": "b", "b": "a"})

    def test_self_parent_rejected(self):
        with pytest.raises(ValueError, match="own parent"):
            Taxonomy({"a": "a"})

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Taxonomy({})


@pytest.fixture
def purchases(clothes):
    """90 purchases: jackets and ski pants co-occur with winter=yes."""
    records = []
    records += [("jacket", "yes")] * 18 + [("jacket", "no")] * 6
    records += [("ski_pants", "yes")] * 14 + [("ski_pants", "no")] * 7
    records += [("shirt", "yes")] * 10 + [("shirt", "no")] * 35
    schema = TableSchema(
        [
            categorical("item", ("shirt", "jacket", "ski_pants")),
            categorical("winter", ("no", "yes")),
        ]
    )
    return RelationalTable.from_records(schema, records)


def taxonomy_config(clothes, **overrides):
    base = dict(
        min_support=0.1,
        min_confidence=0.5,
        max_support=0.8,
        taxonomies={"item": clothes},
    )
    base.update(overrides)
    return MinerConfig(**base)


class TestMapperIntegration:
    def test_columns_recoded_to_dfs_order(self, purchases, clothes):
        mapper = TableMapper(purchases, taxonomy_config(clothes))
        # jacket -> 0, ski_pants -> 1, shirt -> 2 regardless of the
        # schema's domain order.
        item_codes = mapper.column(0)
        raw = purchases.column("item")
        for code, table_code in zip(item_codes, raw):
            name = purchases.schema.attribute("item").values[table_code]
            assert clothes.leaves_in_order()[code] == name

    def test_describe_node_range(self, purchases, clothes):
        mapper = TableMapper(purchases, taxonomy_config(clothes))
        assert mapper.describe_item(Item(0, 0, 1)) == "<item: outerwear>"
        assert mapper.describe_item(Item(0, 0, 2)) == "<item: clothes>"
        assert mapper.describe_item(Item(0, 1, 1)) == "<item: ski_pants>"

    def test_mismatched_leaves_rejected(self, purchases):
        bad = Taxonomy({"jacket": "outerwear", "hat": "outerwear"})
        with pytest.raises(ValueError, match="do not match"):
            TableMapper(purchases, taxonomy_config(bad))

    def test_taxonomy_on_quantitative_rejected(self, clothes):
        schema = TableSchema([quantitative("item")])
        table = RelationalTable.from_columns(
            schema, [np.zeros(3)]
        )
        with pytest.raises(ValueError, match="quantitative"):
            TableMapper(table, taxonomy_config(clothes))

    def test_unknown_attribute_rejected(self, purchases, clothes):
        config = taxonomy_config(clothes)
        config.taxonomies = {"nope": clothes}
        with pytest.raises(ValueError, match="unknown attributes"):
            TableMapper(purchases, config)


class TestFrequentItemsWithTaxonomy:
    def test_node_items_generated(self, purchases, clothes):
        config = taxonomy_config(clothes)
        mapper = TableMapper(purchases, config)
        result = find_frequent_items(mapper, 0.1, 0.8)
        # outerwear = codes 0..1: 24 + 21 = 45 of 90 records.
        assert result.supports[Item(0, 0, 1)] == 45
        # clothes = everything (100%) exceeds maxsup 80% -> absent.
        assert Item(0, 0, 2) not in result.supports

    def test_non_node_ranges_never_generated(self, purchases, clothes):
        config = taxonomy_config(clothes)
        mapper = TableMapper(purchases, config)
        result = find_frequent_items(mapper, 0.01, 1.0)
        # ski_pants+shirt (codes 1..2) is not a taxonomy node.
        assert Item(0, 1, 2) not in result.supports
        # With maxsup=1.0 the root is now allowed.
        assert Item(0, 0, 2) in result.supports


class TestEndToEndTaxonomyMining:
    def test_outerwear_rule_found(self, purchases, clothes):
        result = QuantitativeMiner(
            purchases, taxonomy_config(clothes)
        ).mine()
        by_key = {(r.antecedent, r.consequent): r for r in result.rules}
        key = (
            make_itemset([Item(0, 0, 1)]),  # outerwear
            make_itemset([Item(1, 1, 1)]),  # winter: yes
        )
        assert key in by_key
        rule = by_key[key]
        assert rule.support == pytest.approx(32 / 90)
        assert rule.confidence == pytest.approx(32 / 45)
        text = result.describe(rule)
        assert "<item: outerwear>" in text

    def test_leaf_rules_coexist(self, purchases, clothes):
        result = QuantitativeMiner(
            purchases, taxonomy_config(clothes)
        ).mine()
        keys = {(r.antecedent, r.consequent) for r in result.rules}
        assert (
            make_itemset([Item(0, 0, 0)]),  # jacket
            make_itemset([Item(1, 1, 1)]),
        ) in keys

    def test_interest_prunes_leaf_rules_tracking_node_rule(
        self, purchases, clothes
    ):
        """jacket=>winter and ski_pants=>winter track outerwear=>winter
        (confidences 75%, 67% vs 71%), so with the interest measure only
        the node-level rule family survives at R=1.2."""
        config = taxonomy_config(clothes, interest_level=1.2)
        result = QuantitativeMiner(purchases, config).mine()
        kept = {(r.antecedent, r.consequent) for r in result.interesting_rules}
        node_key = (
            make_itemset([Item(0, 0, 1)]),
            make_itemset([Item(1, 1, 1)]),
        )
        jacket_key = (
            make_itemset([Item(0, 0, 0)]),
            make_itemset([Item(1, 1, 1)]),
        )
        assert node_key in kept
        assert jacket_key not in kept


class TestTaxonomyEquality:
    """Value semantics added for the config dict contract."""

    def test_equal_by_edges(self):
        edges = {"shirt": "clothes", "jacket": "outerwear"}
        assert Taxonomy(dict(edges)) == Taxonomy(dict(edges))
        assert hash(Taxonomy(dict(edges))) == hash(Taxonomy(dict(edges)))

    def test_unequal_edges_differ(self):
        assert Taxonomy({"a": "b"}) != Taxonomy({"a": "c"})
        assert Taxonomy({"a": "b"}) != {"a": "b"}

    def test_edges_round_trip(self):
        edges = {"shirt": "clothes", "outerwear": "clothes"}
        taxonomy = Taxonomy(edges)
        assert taxonomy.edges == edges
        assert Taxonomy(taxonomy.edges) == taxonomy

"""Sharded rule generation and interest filtering are invisible.

Rule generation fans out by frequent-itemset block and the interest
filter by attribute-signature group; both merge in block order and
finish with the canonical rule sort, so for *any* executor and *any*
block size the output must be bit-identical to the serial reference —
same rules, same interesting rules, same list order.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CacheConfig,
    ExecutionConfig,
    MinerConfig,
    QuantitativeMiner,
    filter_interesting_rules,
    generate_rules,
)
from repro.core.apriori_quant import find_frequent_itemsets
from repro.core.mapper import TableMapper
from repro.engine import plan_blocks
from repro.table import RelationalTable, TableSchema, categorical, quantitative

NO_CACHE = CacheConfig(enabled=False)


def build_table(x_values, y_values, c_values):
    schema = TableSchema(
        [
            quantitative("x"),
            quantitative("y"),
            categorical("c", ("a", "b", "d")),
        ]
    )
    return RelationalTable.from_columns(
        schema,
        [
            np.array(x_values, dtype=float),
            np.array(y_values, dtype=float),
            np.array(c_values, dtype=np.int64) % 3,
        ],
    )


class TestPlanBlocks:
    def test_explicit_block_size(self):
        blocks = plan_blocks([1, 2, 3, 4, 5], block_size=2)
        assert blocks == [[1, 2], [3, 4], [5]]

    def test_derived_from_workers(self):
        blocks = plan_blocks(list(range(8)), num_workers=2)
        # Two blocks per worker.
        assert len(blocks) == 4
        assert [x for block in blocks for x in block] == list(range(8))

    def test_single_worker_two_blocks(self):
        # Always two blocks per worker, so even a lone worker exposes
        # the merge path.
        assert plan_blocks([1, 2, 3], num_workers=1) == [[1, 2], [3]]

    def test_order_preserved(self):
        items = list("fingerprint")
        blocks = plan_blocks(items, block_size=3)
        assert [x for block in blocks for x in block] == items

    def test_invalid_block_size(self):
        import pytest

        with pytest.raises(ValueError):
            plan_blocks([1], block_size=0)


draws = st.lists(st.integers(0, 9), min_size=30, max_size=70)


def mine_config(min_confidence, interest_level, execution):
    return MinerConfig(
        min_support=0.15,
        min_confidence=min_confidence,
        max_support=0.6,
        partial_completeness=3.0,
        interest_level=interest_level,
        execution=execution,
        cache=NO_CACHE,
    )


class TestShardedRuleStagesProperty:
    @given(
        draws,
        draws,
        draws,
        st.floats(0.2, 0.6),
        st.floats(1.0, 2.0),
        st.integers(1, 20),
    )
    @settings(max_examples=8, deadline=None)
    def test_block_layout_is_invisible(
        self, xs, ys, cs, min_confidence, interest_level, block_size
    ):
        n = min(len(xs), len(ys), len(cs))
        table = build_table(xs[:n], ys[:n], cs[:n])
        reference = QuantitativeMiner(
            table,
            mine_config(min_confidence, interest_level, ExecutionConfig()),
        ).mine()
        variants = {
            "serial-blocked": ExecutionConfig(rule_block_size=block_size),
            "parallel": ExecutionConfig(
                executor="parallel", num_workers=2
            ),
            "parallel-blocked": ExecutionConfig(
                executor="parallel",
                num_workers=2,
                rule_block_size=block_size,
            ),
        }
        for label, execution in variants.items():
            result = QuantitativeMiner(
                table,
                mine_config(min_confidence, interest_level, execution),
            ).mine()
            assert result.rules == reference.rules, label
            assert [r.sort_key() for r in result.rules] == [
                r.sort_key() for r in reference.rules
            ], f"{label}: rule order diverged"
            assert (
                result.interesting_rules == reference.interesting_rules
            ), label

    @given(draws, st.integers(1, 7))
    @settings(max_examples=6, deadline=None)
    def test_generate_rules_blocked_equals_serial(self, xs, block_size):
        table = build_table(xs, list(reversed(xs)), xs)
        config = MinerConfig(
            min_support=0.15,
            max_support=0.6,
            partial_completeness=3.0,
            cache=NO_CACHE,
        )
        mapper = TableMapper(table, config)
        support_counts, _ = find_frequent_itemsets(mapper, config)
        serial = generate_rules(support_counts, mapper.num_records, 0.3)
        blocked = generate_rules(
            support_counts,
            mapper.num_records,
            0.3,
            executor=None,
            block_size=block_size,
        )
        assert blocked == serial


class TestShardedInterestFilter:
    def _pipeline_pieces(self, interest_level=1.2):
        table = build_table(
            list(range(40)),
            [v % 7 for v in range(40)],
            [v % 3 for v in range(40)],
        )
        config = MinerConfig(
            min_support=0.15,
            min_confidence=0.3,
            max_support=0.6,
            partial_completeness=3.0,
            interest_level=interest_level,
            cache=NO_CACHE,
        )
        mapper = TableMapper(table, config)
        support_counts, frequent_items = find_frequent_itemsets(
            mapper, config
        )
        rules = generate_rules(support_counts, mapper.num_records, 0.3)
        return rules, support_counts, frequent_items, mapper, config

    def test_blocked_filter_matches_serial(self):
        pieces = self._pipeline_pieces()
        serial, serial_stats = filter_interesting_rules(*pieces)
        for block_size in (1, 2, 5, 100):
            blocked, blocked_stats = filter_interesting_rules(
                *pieces, block_size=block_size
            )
            assert blocked == serial, block_size
            # The worker counters merge back into the caller's stats.
            assert (
                blocked_stats.rules_total == serial_stats.rules_total
            )
            assert (
                blocked_stats.rules_interesting
                == serial_stats.rules_interesting
            )

    def test_interest_disabled_never_fans_out(self):
        pieces = self._pipeline_pieces(interest_level=None)
        rules = pieces[0]
        kept, _ = filter_interesting_rules(*pieces, block_size=1)
        assert kept == list(rules)

"""Zero-copy shard handoff: descriptors, lifecycle, and leak detection.

The engine's contract after the shared-memory refactor: a parallel
fan-out publishes the coded column matrix once, ships descriptor-only
task payloads (no column data ever pickled), produces bit-identical
results, and unlinks every segment when the executor closes.  A store
dropped with live segments must warn instead of silently leaking.
"""

import gc
import pickle

import numpy as np
import pytest

from repro.core import ExecutionConfig, MinerConfig, QuantitativeMiner, TableMapper
from repro.engine import (
    ParallelExecutor,
    SerialExecutor,
    SharedColumnStore,
    SharedShardView,
    ShardView,
    executor_table_view,
    plan_shards,
    plan_task_views,
    shard_view,
    shared_memory_available,
)
from repro.obs import MetricsRegistry
from repro.table import RelationalTable, TableSchema, categorical, quantitative

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="platform lacks usable POSIX shared memory",
)


def build_mapper(n=20_000, seed=7):
    rng = np.random.default_rng(seed)
    schema = TableSchema(
        [
            quantitative("x"),
            quantitative("y"),
            categorical("c", ("a", "b")),
        ]
    )
    table = RelationalTable.from_columns(
        schema,
        [
            rng.integers(0, 8, n).astype(float),
            rng.integers(0, 8, n).astype(float),
            rng.integers(0, 2, n),
        ],
    )
    return TableMapper(
        table,
        MinerConfig(min_support=0.1, num_partitions={"x": 8, "y": 8}),
    )


class TestDescriptorPayloads:
    def test_parallel_tasks_pickle_no_column_data(self):
        """Acceptance: task submission ships descriptors, not columns."""
        mapper = build_mapper()
        executor = ParallelExecutor(num_workers=2)
        try:
            shards = plan_shards(mapper.num_records, num_workers=2)
            views, mode = plan_task_views(executor, mapper, shards)
            assert mode == "zero-copy"
            assert all(isinstance(v, SharedShardView) for v in views)
            task = (None, views[0], ("payload",))
            descriptor_bytes = len(pickle.dumps(task))
            assert descriptor_bytes < 1024, descriptor_bytes
            copied_bytes = len(
                pickle.dumps((None, shard_view(mapper, shards[0]), ()))
            )
            assert descriptor_bytes < copied_bytes / 100
        finally:
            executor.close()

    def test_descriptor_roundtrip_matches_slices(self):
        mapper = build_mapper(n=1_000)
        executor = ParallelExecutor(num_workers=2)
        try:
            shards = plan_shards(mapper.num_records, num_workers=2)
            views, _ = plan_task_views(executor, mapper, shards)
            for shard, view in zip(shards, views):
                clone = pickle.loads(pickle.dumps(view))
                assert clone.num_records == shard.num_records
                assert clone.num_attributes == mapper.num_attributes
                for a in range(mapper.num_attributes):
                    np.testing.assert_array_equal(
                        clone.column(a),
                        mapper.column(a)[shard.start:shard.stop],
                    )
                    assert clone.cardinality(a) == mapper.cardinality(a)
        finally:
            executor.close()

    def test_serial_executor_copies(self):
        mapper = build_mapper(n=500)
        shards = plan_shards(mapper.num_records, shard_size=100)
        views, mode = plan_task_views(SerialExecutor(), mapper, shards)
        assert mode == "copied"
        assert all(isinstance(v, ShardView) for v in views)

    def test_single_full_table_shard_passes_view_through(self):
        mapper = build_mapper(n=500)
        shards = plan_shards(mapper.num_records)
        views, mode = plan_task_views(None, mapper, shards)
        assert mode == "copied"
        assert views == [mapper]

    def test_shared_memory_opt_out_copies(self):
        mapper = build_mapper(n=500)
        executor = ParallelExecutor(num_workers=2, use_shared_memory=False)
        try:
            assert executor.column_store() is None
            shards = plan_shards(mapper.num_records, num_workers=2)
            views, mode = plan_task_views(executor, mapper, shards)
            assert mode == "copied"
            assert all(isinstance(v, ShardView) for v in views)
        finally:
            executor.close()

    def test_executor_table_view_is_descriptor_under_parallel(self):
        mapper = build_mapper(n=2_000)
        executor = ParallelExecutor(num_workers=2)
        try:
            view = executor_table_view(executor, mapper)
            assert isinstance(view, SharedShardView)
            assert view.num_records == mapper.num_records
            assert len(pickle.dumps(view)) < 1024
            serial_view = executor_table_view(SerialExecutor(), mapper)
            assert isinstance(serial_view, ShardView)
        finally:
            executor.close()


class TestStoreLifecycle:
    def test_publish_cached_per_fingerprint(self):
        mapper = build_mapper(n=300)
        store = SharedColumnStore()
        try:
            first = store.publish(mapper)
            second = store.publish(mapper)
            assert first is second
            assert len(store) == 1
        finally:
            store.close()

    def test_close_unlinks_segments(self):
        from multiprocessing import shared_memory

        mapper = build_mapper(n=300)
        store = SharedColumnStore()
        handle = store.publish(mapper)
        assert handle is not None
        released = store.close()
        assert released == 1
        assert store.close() == 0  # idempotent
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.segment)

    def test_publish_declines_views_without_fingerprint(self):
        mapper = build_mapper(n=300)
        plain = shard_view(mapper, plan_shards(mapper.num_records)[0])
        store = SharedColumnStore()
        try:
            assert store.publish(plain) is None
        finally:
            store.close()

    def test_dropped_store_warns_and_counts_leak(self):
        from multiprocessing import shared_memory

        mapper = build_mapper(n=300)
        metrics = MetricsRegistry()
        store = SharedColumnStore(metrics=metrics)
        handle = store.publish(mapper)
        with pytest.warns(ResourceWarning, match="still published"):
            del store
            gc.collect()
        assert metrics.counter("shm.segments_leaked").value == 1
        # The backstop still released the segment.
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.segment)

    def test_publish_metrics(self):
        mapper = build_mapper(n=300)
        metrics = MetricsRegistry()
        store = SharedColumnStore()
        store.publish(mapper, metrics=metrics)
        store.close()
        assert metrics.counter("shm.segments_published").value == 1
        assert metrics.counter("shm.segments_released").value == 1
        assert metrics.counter("shm.bytes_published").value >= (
            mapper.num_attributes * mapper.num_records * 8
        )


class TestEndToEnd:
    def test_parallel_mine_zero_copy_and_identical(self):
        rng = np.random.default_rng(3)
        n = 400
        schema = TableSchema(
            [
                quantitative("x"),
                quantitative("y"),
                categorical("c", ("a", "b", "d")),
            ]
        )
        table = RelationalTable.from_columns(
            schema,
            [
                rng.integers(0, 10, n).astype(float),
                rng.integers(0, 10, n).astype(float),
                rng.integers(0, 3, n),
            ],
        )

        def mine(execution):
            config = MinerConfig(
                min_support=0.15,
                min_confidence=0.3,
                counting="bitmap",
                execution=execution,
            )
            return QuantitativeMiner(table, config).mine()

        reference = mine(ExecutionConfig())
        parallel = mine(
            ExecutionConfig(executor="parallel", num_workers=2)
        )
        assert parallel.support_counts == reference.support_counts
        assert parallel.rules == reference.rules

        execution = parallel.stats.execution
        assert execution.shard_handoff == "zero-copy"
        assert "zero-copy" in execution.stage_handoff.values()
        assert reference.stats.execution.shard_handoff == "copied"
        assert "zero-copy handoff" in parallel.stats.summary()
        assert (
            parallel.stats.counting_groups_by_backend.get("bitmap", 0) > 0
        )
        assert "bitmap=" in parallel.stats.summary()

"""Property test: execution strategy never changes mining output.

The engine's core guarantee is that executors and shard layouts are
purely operational — per-shard integer support counts merge by addition,
backends are resolved once against full-table cardinalities, and pass-2
thresholding happens once on the merged global counts.  So for *any*
table, *any* shard size, and *any* executor, the mining result must be
bit-identical to the serial single-shard reference: same
``support_counts`` (values *and* dict insertion order), same ``rules``,
same ``interesting_rules``.

One randomized property drives serial vs. fine-grained shards vs. a
two-worker process pool across all four counting backends — under a
parallel executor the shard views additionally travel as zero-copy
shared-memory descriptors — and across the artifact-cache backends
(each run gets a private cache, so a hit can only come from the run's
own stages).
"""

import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CacheConfig,
    ExecutionConfig,
    MinerConfig,
    QuantitativeMiner,
)
from repro.table import RelationalTable, TableSchema, categorical, quantitative


def build_table(x_values, y_values, c_values):
    schema = TableSchema(
        [
            quantitative("x"),
            quantitative("y"),
            categorical("c", ("a", "b", "d")),
        ]
    )
    return RelationalTable.from_columns(
        schema,
        [
            np.array(x_values, dtype=float),
            np.array(y_values, dtype=float),
            np.array(c_values, dtype=np.int64) % 3,
        ],
    )


draws = st.lists(st.integers(0, 9), min_size=30, max_size=80)


def mine_with(
    table, backend, minsup, execution, cache_backend="none", target=None
):
    def build_config(cache):
        return MinerConfig(
            min_support=minsup,
            min_confidence=0.3,
            max_support=0.6,
            partial_completeness=3.0,
            counting=backend,
            interest_level=1.1,
            target=target,
            execution=execution,
            cache=cache,
        )

    if cache_backend == "disk":
        # A private directory per run: a hit can only restore artifacts
        # this very run stored, so caching cannot mask a divergence.
        with tempfile.TemporaryDirectory() as tmp:
            cache = CacheConfig(backend="disk", directory=tmp)
            return QuantitativeMiner(table, build_config(cache)).mine()
    cache = CacheConfig(backend=cache_backend)
    return QuantitativeMiner(table, build_config(cache)).mine()


class TestExecutionEquivalence:
    @given(
        draws,
        draws,
        draws,
        st.floats(0.15, 0.4),
        st.sampled_from(["array", "rtree", "direct", "bitmap"]),
        st.integers(1, 25),
        st.sampled_from(["none", "memory", "disk"]),
    )
    @settings(max_examples=8, deadline=None)
    def test_execution_strategy_is_invisible(
        self, xs, ys, cs, minsup, backend, shard_size, cache_backend
    ):
        n = min(len(xs), len(ys), len(cs))
        table = build_table(xs[:n], ys[:n], cs[:n])

        reference = mine_with(
            table, backend, minsup, ExecutionConfig()
        )
        variants = {
            "sharded-serial": ExecutionConfig(shard_size=shard_size),
            "parallel": ExecutionConfig(
                executor="parallel", num_workers=2
            ),
            "parallel-sharded": ExecutionConfig(
                executor="parallel", num_workers=2, shard_size=shard_size
            ),
        }
        for label, execution in variants.items():
            result = mine_with(
                table, backend, minsup, execution, cache_backend
            )
            assert result.support_counts == reference.support_counts, label
            assert list(result.support_counts) == list(
                reference.support_counts
            ), f"{label}: iteration order diverged"
            assert result.rules == reference.rules, label
            assert (
                result.interesting_rules == reference.interesting_rules
            ), label

    @given(
        draws,
        draws,
        draws,
        st.floats(0.15, 0.4),
        st.sampled_from(["array", "rtree", "direct", "bitmap"]),
        st.sampled_from(["x", "y", "c"]),
        st.sampled_from(
            [
                (ExecutionConfig(), "none"),
                (ExecutionConfig(shard_size=9), "memory"),
                (
                    ExecutionConfig(executor="parallel", num_workers=2),
                    "disk",
                ),
            ]
        ),
    )
    @settings(max_examples=8, deadline=None)
    def test_goal_directed_equals_filtered_full_mine(
        self, xs, ys, cs, minsup, backend, target, variant
    ):
        """``target=`` mining is pure pruning: for any table, backend,
        executor and cache, it must return exactly the rules of a full
        mine whose consequent is the single item over the target
        attribute — same objects, same order — while never counting
        *more* candidates."""
        execution, cache_backend = variant
        n = min(len(xs), len(ys), len(cs))
        table = build_table(xs[:n], ys[:n], cs[:n])
        target_idx = table.schema.index_of(target)

        full = mine_with(table, backend, minsup, ExecutionConfig())
        goal = mine_with(
            table, backend, minsup, execution, cache_backend,
            target=target,
        )

        def to_target(rules):
            return [
                r
                for r in rules
                if len(r.consequent) == 1
                and r.consequent[0].attribute == target_idx
            ]

        assert goal.rules == to_target(full.rules)
        assert goal.interesting_rules == to_target(full.interesting_rules)
        assert (
            goal.stats.total_candidates <= full.stats.total_candidates
        ), "goal-directed mining counted more candidates than a full mine"

    @given(draws, st.integers(1, 7))
    @settings(max_examples=6, deadline=None)
    def test_auto_backend_choice_ignores_shard_layout(
        self, xs, shard_size
    ):
        """`auto` must pick its backend from full-table cardinalities,
        so tiny shards cannot flip a group to a different backend."""
        table = build_table(xs, list(reversed(xs)), xs)
        reference = mine_with(table, "auto", 0.2, ExecutionConfig())
        sharded = mine_with(
            table, "auto", 0.2, ExecutionConfig(shard_size=shard_size)
        )
        assert sharded.support_counts == reference.support_counts
        assert (
            sharded.stats.counting_groups_by_backend
            == reference.stats.counting_groups_by_backend
        )

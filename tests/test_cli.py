"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.data import people_table
from repro.table import save_csv


@pytest.fixture
def people_csv(tmp_path):
    path = tmp_path / "people.csv"
    save_csv(people_table(), path)
    return path


class TestParser:
    def test_mine_defaults(self):
        args = build_parser().parse_args(["mine", "data.csv"])
        assert args.command == "mine"
        assert args.min_support == 0.1
        assert args.interest is None

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out.csv"])
        assert args.records == 10_000

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMine:
    def test_mines_people_csv(self, people_csv, capsys):
        rc = main(
            [
                "mine",
                str(people_csv),
                "--min-support", "0.4",
                "--min-confidence", "0.5",
                "--max-support", "0.6",
                "--categorical", "Married",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "=>" in out
        assert "Married" in out

    def test_limit_and_stats(self, people_csv, capsys):
        rc = main(
            [
                "mine",
                str(people_csv),
                "--min-support", "0.4",
                "--max-support", "0.6",
                "--categorical", "Married",
                "--limit", "2",
                "--stats",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) <= 2
        assert "frequent itemsets" in captured.err

    def test_interest_flag(self, people_csv, capsys):
        rc = main(
            [
                "mine",
                str(people_csv),
                "--min-support", "0.4",
                "--max-support", "0.6",
                "--categorical", "Married",
                "--interest", "1.5",
                "--all-rules",
            ]
        )
        assert rc == 0
        assert "interesting" in capsys.readouterr().err


class TestGenerate:
    def test_generate_then_mine(self, tmp_path, capsys):
        csv_path = tmp_path / "credit.csv"
        rc = main(
            ["generate", str(csv_path), "--records", "300", "--seed", "1"]
        )
        assert rc == 0
        assert csv_path.exists()
        rc = main(
            [
                "mine",
                str(csv_path),
                "--min-support", "0.3",
                "--max-support", "0.5",
                "--completeness", "4",
                "--categorical", "employee_category,marital_status",
                "--max-itemset-size", "2",
            ]
        )
        assert rc == 0
        assert "=>" in capsys.readouterr().out


class TestMineExtensions:
    def test_save_json_and_csv(self, people_csv, tmp_path, capsys):
        json_path = tmp_path / "rules.json"
        csv_path = tmp_path / "rules.csv"
        rc = main(
            [
                "mine", str(people_csv),
                "--min-support", "0.4",
                "--max-support", "0.6",
                "--categorical", "Married",
                "--save-json", str(json_path),
                "--save-csv", str(csv_path),
            ]
        )
        assert rc == 0
        assert json_path.exists() and csv_path.exists()
        from repro.core.export import load_rules_json

        rules, metadata = load_rules_json(json_path)
        assert rules
        assert metadata["min_support"] == 0.4

    def test_partition_method_flag(self, people_csv, capsys):
        rc = main(
            [
                "mine", str(people_csv),
                "--min-support", "0.4",
                "--max-support", "0.6",
                "--categorical", "Married",
                "--partition-method", "equiwidth",
            ]
        )
        assert rc == 0

    def test_taxonomy_flag(self, tmp_path, capsys):
        import json as jsonlib

        csv_path = tmp_path / "sales.csv"
        csv_path.write_text(
            "item,winter\n"
            + "jacket,yes\n" * 6
            + "ski_pants,yes\n" * 5
            + "shirt,no\n" * 9
        )
        tax_path = tmp_path / "clothes.json"
        tax_path.write_text(
            jsonlib.dumps(
                {
                    "jacket": "outerwear",
                    "ski_pants": "outerwear",
                    "outerwear": "clothes",
                    "shirt": "clothes",
                }
            )
        )
        rc = main(
            [
                "mine", str(csv_path),
                "--min-support", "0.2",
                "--min-confidence", "0.5",
                "--max-support", "0.8",
                "--categorical", "winter",
                "--taxonomy", f"item={tax_path}",
                "--all-rules",
            ]
        )
        assert rc == 0
        assert "outerwear" in capsys.readouterr().out

    def test_bad_taxonomy_spec_rejected(self, people_csv):
        with pytest.raises(SystemExit, match="ATTR=FILE"):
            main(
                [
                    "mine", str(people_csv),
                    "--taxonomy", "nonsense",
                ]
            )


class TestFigureCommands:
    def test_figure7_small(self, capsys):
        rc = main(
            ["figure7", "--records", "1000", "--levels", "3,5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "K" in out
        assert "R=1.1" in out

    def test_figure9_small(self, capsys):
        rc = main(["figure9", "--sizes", "1000,2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "relative" in out.lower() or "minsup" in out


class TestAsyncBatchMode:
    def test_async_jobs_sweep(self, people_csv, capsys):
        rc = main(
            [
                "mine", str(people_csv),
                "--min-support", "0.4",
                "--max-support", "0.6",
                "--categorical", "Married",
                "--async-jobs", "2",
                "--sweep-confidence", "0.5,0.7",
                "--stats",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "== job-1: min_conf=0.5" in captured.out
        assert "== job-2: min_conf=0.7" in captured.out
        assert "completed" in captured.out
        assert "jobs submitted:      2" in captured.err
        assert "completed:         2" in captured.err

    def test_async_jobs_sweep_interest(self, people_csv, capsys):
        rc = main(
            [
                "mine", str(people_csv),
                "--min-support", "0.4",
                "--max-support", "0.6",
                "--categorical", "Married",
                "--async-jobs", "1",
                "--sweep-interest", "1.1,2.0",
                "--all-rules",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "interest=1.1" in out
        assert "interest=2" in out

    def test_async_jobs_single_config(self, people_csv, capsys):
        # No sweep flags: batch mode degrades to one job.
        rc = main(
            [
                "mine", str(people_csv),
                "--min-support", "0.4",
                "--max-support", "0.6",
                "--categorical", "Married",
                "--async-jobs", "2",
                "--job-timeout", "300",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "== job-1:" in out
        assert "completed" in out

    def test_async_jobs_matches_sync_output_rules(self, people_csv, capsys):
        args = [
            "mine", str(people_csv),
            "--min-support", "0.4",
            "--min-confidence", "0.5",
            "--max-support", "0.6",
            "--categorical", "Married",
        ]
        assert main(args) == 0
        sync_out = capsys.readouterr().out
        assert main(args + ["--async-jobs", "1"]) == 0
        batch_out = capsys.readouterr().out
        for line in sync_out.strip().splitlines():
            if "=>" in line:
                assert line in batch_out


class TestObservabilityFlags:
    base = [
        "--min-support", "0.4",
        "--max-support", "0.6",
        "--categorical", "Married",
    ]

    def test_trace_and_metrics_out(self, people_csv, tmp_path, capsys):
        import json

        from repro.obs import (
            validate_chrome_trace,
            validate_metrics_snapshot,
            validate_spans_jsonl,
        )

        trace = tmp_path / "run.jsonl"
        metrics = tmp_path / "run-metrics.json"
        rc = main(
            [
                "mine", str(people_csv), *self.base,
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert validate_spans_jsonl(trace) == []
        chrome = tmp_path / "run.chrome.json"
        assert validate_chrome_trace(json.loads(chrome.read_text())) == []
        assert (
            validate_metrics_snapshot(json.loads(metrics.read_text()))
            == []
        )
        for path in (trace, chrome, metrics):
            assert f"wrote {path}" in err

    def test_explain_timing_report(self, people_csv, capsys):
        rc = main(
            ["mine", str(people_csv), *self.base, "--explain-timing"]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "mine [run]" in err
        assert "frequent_itemsets [stage]" in err
        assert "metrics:" in err
        assert "runs.completed: 1" in err

    def test_batch_mode_shared_trace(self, people_csv, tmp_path, capsys):
        from repro.obs import read_spans_jsonl, spans_by_kind

        trace = tmp_path / "sweep.jsonl"
        rc = main(
            [
                "mine", str(people_csv), *self.base,
                "--async-jobs", "2",
                "--sweep-confidence", "0.5,0.7",
                "--trace-out", str(trace),
            ]
        )
        assert rc == 0
        spans = read_spans_jsonl(trace)
        jobs = spans_by_kind(spans, "job")
        assert {span.name for span in jobs} == {"job-1", "job-2"}
        runs = spans_by_kind(spans, "run")
        assert {span.parent_id for span in runs} == {
            span.span_id for span in jobs
        }

    def test_flags_off_by_default(self, people_csv, capsys):
        rc = main(["mine", str(people_csv), *self.base])
        assert rc == 0
        err = capsys.readouterr().err
        assert "wrote" not in err
        assert "[run]" not in err


class TestGoalDirectedAndPredict:
    def mine_target_json(self, people_csv, tmp_path, target="Married"):
        out = tmp_path / "rules.json"
        rc = main(
            [
                "mine", str(people_csv),
                "--min-support", "0.3",
                "--min-confidence", "0.4",
                "--max-support", "0.6",
                "--categorical", "Married",
                "--completeness", "3",
                "--target", target,
                "--all-rules",
                "--save-json", str(out),
            ]
        )
        assert rc == 0
        return out

    def test_mine_target_emits_only_target_consequents(
        self, people_csv, tmp_path, capsys
    ):
        import json as json_module

        path = self.mine_target_json(people_csv, tmp_path)
        capsys.readouterr()
        document = json_module.loads(path.read_text())
        assert document["rules"], "no rules mined"
        for rule in document["rules"]:
            assert len(rule["consequent"]) == 1
            assert (
                rule["consequent"][0]["attribute_name"] == "Married"
            )

    def test_predict_match_and_target_modes(
        self, people_csv, tmp_path, capsys
    ):
        import json as json_module

        path = self.mine_target_json(people_csv, tmp_path)
        capsys.readouterr()
        rc = main(
            [
                "predict", str(path),
                "--record", '{"Age": 30}',
                "--target", "Married",
            ]
        )
        assert rc == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["target"] == "Married"
        if payload["matches"]:
            assert payload["prediction"]["display"] is not None

        # --linear must answer identically to the indexed path.
        for extra in ([], ["--linear"]):
            rc = main(
                ["predict", str(path), "--record", '{"Age": 30}', *extra]
            )
            assert rc == 0
            answer = json_module.loads(capsys.readouterr().out)
            if extra:
                assert answer == indexed_answer
            else:
                indexed_answer = answer
        assert "num_matches" in indexed_answer

    def test_predict_rejects_bad_inputs(self, people_csv, tmp_path):
        path = self.mine_target_json(people_csv, tmp_path)
        with pytest.raises(SystemExit):
            main(["predict", str(path), "--record", "not json"])
        with pytest.raises(SystemExit):
            main(["predict", str(path), "--record", "[1]"])
        with pytest.raises(SystemExit):
            main(
                [
                    "predict", str(path),
                    "--record", "{}",
                    "--target", "NotAnAttribute",
                ]
            )
        with pytest.raises(SystemExit):
            main(["predict", str(tmp_path / "nope.json"), "--record", "{}"])

"""Unit tests for the clustering partitioner (repro.core.clustering)."""

import numpy as np
import pytest

from repro.core import MinerConfig, QuantitativeMiner, partition_column
from repro.core.clustering import cluster_partition, kmeans_1d
from repro.data import generate_skewed_table


class TestKMeans1D:
    def test_obvious_two_clusters(self):
        values = np.array([0.0, 1.0, 2.0, 100.0, 101.0, 102.0])
        weights = np.ones(6)
        cuts = kmeans_1d(values, weights, 2)
        assert cuts == [3]  # split between 2.0 and 100.0

    def test_three_clusters(self):
        values = np.array([0.0, 1.0, 50.0, 51.0, 100.0, 101.0])
        cuts = kmeans_1d(values, np.ones(6), 3)
        assert cuts == [2, 4]

    def test_weights_pull_boundaries(self):
        # A heavy value should own a cluster rather than be split off.
        values = np.array([0.0, 5.0, 10.0, 15.0])
        heavy = np.array([1.0, 100.0, 1.0, 1.0])
        cuts = kmeans_1d(values, heavy, 2)
        # The heavy 5.0 dominates the left cluster's center; boundary
        # falls after it.
        assert cuts[0] >= 2

    def test_k_at_least_number_of_values(self):
        values = np.array([1.0, 2.0, 3.0])
        assert kmeans_1d(values, np.ones(3), 3) == [1, 2]
        assert kmeans_1d(values, np.ones(3), 10) == [1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([1.0]), np.array([1.0, 2.0]), 2)
        with pytest.raises(ValueError):
            kmeans_1d(np.array([1.0]), np.array([1.0]), 0)

    def test_deterministic(self):
        rng = np.random.default_rng(0)
        values = np.sort(rng.uniform(0, 100, 50))
        weights = rng.uniform(1, 10, 50)
        assert kmeans_1d(values, weights, 5) == kmeans_1d(
            values, weights, 5
        )


class TestClusterPartition:
    def test_interface_matches_partitioning(self):
        rng = np.random.default_rng(1)
        column = rng.normal(size=2_000)
        part = cluster_partition(column, 8)
        assert part.partitioned
        codes = part.assign(column)
        assert codes.min() >= 0
        assert codes.max() < part.num_intervals

    def test_few_values_unpartitioned(self):
        part = cluster_partition(np.array([1.0, 2.0, 2.0]), 5)
        assert not part.partitioned

    def test_dispatch_via_partition_column(self):
        column = np.arange(100, dtype=float)
        part = partition_column(column, 4, "cluster")
        assert part.partitioned

    def test_boundary_falls_in_the_gap(self):
        """The future-work motivation: boundaries should respect the
        data's density structure.  On bimodal data a cluster boundary
        lands inside the empty gap between the modes."""
        rng = np.random.default_rng(2)
        column = np.concatenate(
            [rng.normal(10, 1, 5_000), rng.normal(100, 1, 5_000)]
        )
        part = cluster_partition(column, 4)
        # No interval may span both modes: the rightmost value of mode 1
        # and the leftmost of mode 2 land in different intervals.
        mode1_hi = column[column < 50].max()
        mode2_lo = column[column > 50].min()
        codes = part.assign(np.array([mode1_hi, mode2_lo]))
        assert codes[0] != codes[1], part.edges

    def test_order_preserved(self):
        rng = np.random.default_rng(3)
        column = rng.exponential(10, 3_000)
        part = cluster_partition(column, 6)
        order = np.argsort(column, kind="stable")
        codes = part.assign(column)[order]
        assert (np.diff(codes) >= 0).all()


class TestClusterMiningEndToEnd:
    def test_miner_accepts_cluster_method(self):
        table = generate_skewed_table(3_000, seed=5)
        config = MinerConfig(
            min_support=0.1,
            min_confidence=0.3,
            max_support=0.5,
            num_partitions={"amount": 8},
            partition_method="cluster",
        )
        result = QuantitativeMiner(table, config).mine()
        assert result.rules

    def test_all_methods_find_the_embedded_rule(self):
        table = generate_skewed_table(3_000, seed=5)
        for method in ("equidepth", "equiwidth", "cluster"):
            config = MinerConfig(
                min_support=0.1,
                min_confidence=0.4,
                max_support=0.6,
                num_partitions={"amount": 8},
                partition_method=method,
            )
            result = QuantitativeMiner(table, config).mine()
            # amount ranges must predict segment somewhere.
            assert any(
                any(it.attribute == 1 for it in r.consequent)
                for r in result.rules
            ), method

"""Unit tests for the [AS94] hash-tree (repro.booleans.hashtree)."""

import itertools
import random

import pytest

from repro.booleans import HashTree


class TestConstruction:
    def test_insert_and_contains(self):
        tree = HashTree(k=2)
        tree.insert(("a", "b"))
        assert ("a", "b") in tree
        assert ("a", "c") not in tree
        assert len(tree) == 1

    def test_wrong_length_rejected(self):
        tree = HashTree(k=2)
        with pytest.raises(ValueError, match="length"):
            tree.insert(("a",))

    def test_contains_wrong_length_is_false(self):
        tree = HashTree(k=2)
        tree.insert(("a", "b"))
        assert ("a",) not in tree

    def test_build_infers_k(self):
        tree = HashTree.build([("a", "b"), ("b", "c")])
        assert len(tree) == 2

    def test_build_empty_without_k_rejected(self):
        with pytest.raises(ValueError, match="infer"):
            HashTree.build([])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HashTree(k=0)
        with pytest.raises(ValueError):
            HashTree(k=2, leaf_capacity=0)
        with pytest.raises(ValueError):
            HashTree(k=2, num_buckets=0)

    def test_leaves_split_under_pressure(self):
        # Insert far more itemsets than one leaf holds; all remain findable.
        itemsets = list(itertools.combinations(range(12), 3))
        tree = HashTree.build(itemsets, leaf_capacity=2, num_buckets=4)
        assert len(tree) == len(itemsets)
        for s in itemsets:
            assert s in tree


class TestSubsets:
    def test_matches_brute_force_on_random_data(self):
        rng = random.Random(7)
        universe = list(range(30))
        itemsets = {
            tuple(sorted(rng.sample(universe, 3))) for _ in range(200)
        }
        tree = HashTree.build(itemsets, leaf_capacity=3, num_buckets=5)
        for _ in range(50):
            transaction = sorted(rng.sample(universe, rng.randint(0, 12)))
            expected = sorted(
                s for s in itemsets if set(s).issubset(transaction)
            )
            assert sorted(tree.subsets(transaction)) == expected

    def test_short_transaction_returns_nothing(self):
        tree = HashTree.build([("a", "b", "c")])
        assert tree.subsets(["a", "b"]) == []

    def test_no_duplicates_despite_bucket_collisions(self):
        # One bucket forces every item into the same child chain.
        tree = HashTree.build(
            [("a", "b"), ("a", "c"), ("b", "c")], num_buckets=1
        )
        found = tree.subsets(["a", "b", "c"])
        assert sorted(found) == [("a", "b"), ("a", "c"), ("b", "c")]
        assert len(found) == len(set(found))

    def test_transaction_with_duplicates(self):
        tree = HashTree.build([("a", "b")])
        assert tree.subsets(["a", "a", "b"]) == [("a", "b")]

    def test_k1_tree(self):
        tree = HashTree.build([("a",), ("b",)], k=1)
        assert sorted(tree.subsets(["a", "c"])) == [("a",)]

"""Unit tests for the programmatic figure runners (repro.experiments)."""

import pytest

from repro.data import generate_credit_table
from repro.experiments import (
    run_figure7,
    run_figure8,
    run_figure9,
    time_mining,
)


@pytest.fixture(scope="module")
def small_table():
    return generate_credit_table(2_000, seed=42)


class TestFigure7Runner:
    @pytest.fixture(scope="class")
    def result(self, small_table):
        return run_figure7(
            small_table,
            completeness_levels=(3.0, 5.0),
            interest_levels=(1.1, 2.0),
        )

    def test_one_point_per_level(self, result):
        assert [p.completeness for p in result.points] == [3.0, 5.0]

    def test_counts_consistent(self, result):
        for point in result.points:
            for r_level, count in point.interesting.items():
                assert 0 <= count <= point.total_rules
                assert point.fraction(r_level) <= 1.0

    def test_higher_r_keeps_no_more(self, result):
        for point in result.points:
            assert point.interesting[2.0] <= point.interesting[1.1]

    def test_partitions_follow_equation2(self, result):
        # n'=2, minsup 0.2: K=3 -> 10 intervals, K=5 -> 5.
        by_k = {p.completeness: p.partitions for p in result.points}
        assert by_k[3.0] == 10
        assert by_k[5.0] == 5

    def test_render_is_tabular(self, result):
        text = result.render()
        assert "K" in text.splitlines()[0]
        assert len(text.splitlines()) == 3


class TestFigure8Runner:
    @pytest.fixture(scope="class")
    def result(self, small_table):
        return run_figure8(
            small_table,
            combos=((0.2, 0.25),),
            interest_sweep=(0.0, 1.1, 2.0),
            num_partitions=8,
        )

    def test_r_zero_is_everything(self, result):
        assert result.series[0].fractions[0.0] == pytest.approx(1.0)

    def test_fractions_fall(self, result):
        fractions = result.series[0].fractions
        assert fractions[2.0] <= fractions[1.1] <= fractions[0.0]

    def test_render(self, result):
        text = result.render()
        assert "sup=20%/conf=25%" in text
        assert "100.0%" in text


class TestFigure9Runner:
    def test_relative_times_normalized(self):
        cache = {}

        def table_for_size(n):
            if n not in cache:
                cache[n] = generate_credit_table(n, seed=1)
            return cache[n]

        result = run_figure9(
            table_for_size,
            sizes=(2_000, 8_000),
            min_supports=(0.3,),
        )
        series = result.series[0]
        assert series.points[0].relative == pytest.approx(1.0)
        assert series.points[1].relative > 0
        assert "minsup=30%" in result.render()

    def test_time_mining_returns_counts(self, small_table):
        seconds, itemsets = time_mining(small_table, 0.3, repetitions=1)
        assert seconds > 0
        assert itemsets > 0

"""The asyncio front end: bit-identity, cancellation, timeouts, sharing.

The async API is a scheduling layer over the same staged engine, so its
core contract is the sync one's: for every executor and cache backend,
``await mine_quantitative_rules_async(...)`` must be bit-identical to
``mine_quantitative_rules(...)`` — rules, interesting rules, and support
counts including dict insertion order.  On top of that the job runner
promises clean cancellation (pool slot released, shared cache left
consistent), per-job timeouts, and cache sharing across concurrent jobs.

No pytest-asyncio in the container, so every test drives its own loop
via ``asyncio.run``.
"""

import asyncio
import dataclasses
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CacheConfig,
    ExecutionConfig,
    MinerConfig,
    MiningJobCancelled,
    MiningJobRunner,
    MiningJobTimeout,
    mine_quantitative_rules,
    mine_quantitative_rules_async,
)
from repro.core.async_miner import (
    JOB_CANCELLED,
    JOB_COMPLETED,
    JOB_TIMED_OUT,
)
from repro.engine import MemoryCache, StageEvent
from repro.table import RelationalTable, TableSchema, categorical, quantitative


def build_table(x_values, c_values):
    schema = TableSchema(
        [quantitative("x"), categorical("c", ("a", "b", "d"))]
    )
    return RelationalTable.from_columns(
        schema,
        [
            np.array(x_values, dtype=float),
            np.array(c_values, dtype=np.int64) % 3,
        ],
    )


def small_table():
    return build_table(list(range(30)), [v % 3 for v in range(30)])


def assert_identical(actual, expected):
    """The full bit-identity contract, including dict insertion order."""
    assert actual.rules == expected.rules
    assert actual.interesting_rules == expected.interesting_rules
    assert actual.support_counts == expected.support_counts
    assert list(actual.support_counts) == list(expected.support_counts)


class TestAsyncMatchesSync:
    @pytest.mark.parametrize("executor", ["serial", "parallel"])
    @pytest.mark.parametrize("backend", ["none", "memory", "disk"])
    def test_every_executor_cache_combination(
        self, executor, backend, tmp_path
    ):
        if backend == "none":
            cache = CacheConfig(enabled=False)
        elif backend == "memory":
            cache = CacheConfig()
        else:
            cache = CacheConfig(backend="disk", directory=str(tmp_path))
        config = MinerConfig(
            min_support=0.2,
            min_confidence=0.4,
            interest_level=1.1,
            execution=ExecutionConfig(executor=executor, num_workers=2),
            cache=cache,
        )
        table = small_table()
        sync_result = mine_quantitative_rules(table, config)
        async_result = asyncio.run(
            mine_quantitative_rules_async(table, config)
        )
        assert_identical(async_result, sync_result)

    @given(
        x=st.lists(
            st.integers(min_value=0, max_value=50), min_size=12, max_size=40
        ),
        min_conf=st.sampled_from([0.3, 0.5, 0.7]),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_bit_identical(self, x, min_conf):
        table = build_table(x, [v % 3 for v in range(len(x))])
        config = MinerConfig(
            min_support=0.2, min_confidence=min_conf, interest_level=1.1
        )
        sync_result = mine_quantitative_rules(table, config)
        async_result = asyncio.run(
            mine_quantitative_rules_async(table, config)
        )
        assert_identical(async_result, sync_result)

    def test_flat_overrides_match_sync_path(self, tmp_path):
        table = small_table()
        sync_result = mine_quantitative_rules(
            table, min_support=0.2, cache_dir=str(tmp_path)
        )
        async_result = asyncio.run(
            mine_quantitative_rules_async(
                table, min_support=0.2, cache_dir=str(tmp_path)
            )
        )
        assert_identical(async_result, sync_result)

    def test_conflicting_async_overrides_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            asyncio.run(
                mine_quantitative_rules_async(
                    small_table(),
                    MinerConfig(async_mining={"max_concurrent_jobs": 2}),
                    max_concurrent_jobs=3,
                )
            )


class TestProgressEvents:
    def test_sync_callback_sees_every_stage(self):
        events = []

        async def run():
            return await mine_quantitative_rules_async(
                small_table(),
                MinerConfig(min_support=0.2, interest_level=1.1),
                progress=events.append,
            )

        result = asyncio.run(run())
        assert result.support_counts
        assert all(isinstance(e, StageEvent) for e in events)
        stages = [e.stage for e in events]
        # Nested passes report through the same hook as top-level stages.
        assert "frequent_items" in stages
        assert "frequent_itemsets" in stages
        assert "rule_generation" in stages
        assert "interest" in stages
        assert all(
            e.cache_event in ("hit", "miss", "skipped") for e in events
        )

    def test_async_callback_awaited(self):
        events = []

        async def progress(event):
            await asyncio.sleep(0)
            events.append(event.stage)

        async def run():
            return await mine_quantitative_rules_async(
                small_table(),
                MinerConfig(min_support=0.2),
                progress=progress,
            )

        asyncio.run(run())
        assert "rule_generation" in events


class TestJobRunner:
    def config(self, **kwargs):
        base = dict(min_support=0.2, min_confidence=0.4, interest_level=1.1)
        base.update(kwargs)
        return MinerConfig(**base)

    def test_sweep_results_bit_identical_to_sync(self):
        table = small_table()
        configs = [
            self.config(min_confidence=c) for c in (0.3, 0.5, 0.7)
        ]
        expected = [mine_quantitative_rules(table, c) for c in configs]

        async def run():
            async with MiningJobRunner(max_concurrent_jobs=3) as runner:
                return await runner.run_sweep(table, configs)

        results = asyncio.run(run())
        for actual, want in zip(results, expected):
            assert_identical(actual, want)

    def test_serialized_jobs_share_warm_cache(self):
        # With the concurrency bound at 1 the jobs run back to back, so
        # cache accounting is deterministic: the first job misses every
        # cacheable stage, and each later job re-hits the
        # confidence-independent frequent_itemsets artifact.
        table = small_table()
        configs = [
            self.config(min_confidence=c) for c in (0.3, 0.5, 0.7)
        ]

        async def run():
            async with MiningJobRunner(
                max_concurrent_jobs=1, cache=MemoryCache()
            ) as runner:
                await runner.run_sweep(table, configs)
                return runner.stats

        stats = asyncio.run(run())
        assert stats.submitted == stats.completed == 3
        assert stats.cache_hits == 2
        per_job = sorted(j.cache_hits for j in stats.jobs)
        assert per_job == [0, 1, 1]

    def test_concurrent_jobs_complete_and_account(self):
        table = small_table()
        configs = [self.config(min_confidence=c) for c in (0.3, 0.5)]

        async def run():
            async with MiningJobRunner(max_concurrent_jobs=2) as runner:
                jobs = [runner.submit(table, c) for c in configs]
                results = [await job.wait() for job in jobs]
                return runner.stats, jobs, results

        stats, jobs, results = asyncio.run(run())
        assert [j.status for j in jobs] == [JOB_COMPLETED] * 2
        assert stats.completed == 2
        assert stats.cancelled == stats.failed == stats.timed_out == 0
        assert len(stats.jobs) == 2
        assert all(j.seconds >= 0 for j in stats.jobs)
        assert all(r.support_counts for r in results)

    def test_cancellation_mid_stage_releases_slot_and_cache(self):
        table = build_table(
            list(range(120)), [v % 3 for v in range(120)]
        )
        config = self.config()
        expected = mine_quantitative_rules(table, config)
        cache = MemoryCache()

        async def run():
            async with MiningJobRunner(
                max_concurrent_jobs=1, cache=cache
            ) as runner:
                victim = runner.submit(table, config)
                assert victim.cancel()
                with pytest.raises(MiningJobCancelled):
                    await victim.wait()
                assert victim.status == JOB_CANCELLED
                assert victim.done

                # The pool slot and the shared cache both survive: a
                # follow-up job on the same runner completes normally
                # and is still bit-identical to the sync run.
                survivor = runner.submit(table, config)
                result = await survivor.wait()
                assert survivor.status == JOB_COMPLETED
                return runner.stats, result

        stats, result = asyncio.run(run())
        assert stats.cancelled == 1
        assert stats.completed == 1
        assert_identical(result, expected)

    def test_cancel_while_running_stops_later_stages(self):
        table = build_table(
            list(range(120)), [v % 3 for v in range(120)]
        )
        config = self.config()
        events = []

        async def run():
            async with MiningJobRunner(max_concurrent_jobs=1) as runner:
                job = None

                def progress(event):
                    events.append(event.stage)
                    if len(events) == 1:
                        job.cancel()

                job = runner.submit(table, config, progress=progress)
                with pytest.raises(MiningJobCancelled):
                    await job.wait()
                return job

        job = asyncio.run(run())
        assert job.status == JOB_CANCELLED
        # The cancel landed at a stage boundary: the interest filter
        # (the last stage) never ran.
        assert "interest" not in events

    def test_timeout_marks_job_timed_out(self):
        table = build_table(
            list(range(200)), [v % 3 for v in range(200)]
        )

        async def run():
            async with MiningJobRunner(max_concurrent_jobs=1) as runner:
                job = runner.submit(
                    table, self.config(), timeout=1e-6
                )
                with pytest.raises(MiningJobTimeout):
                    await job.wait()
                return runner.stats, job

        stats, job = asyncio.run(run())
        assert job.status == JOB_TIMED_OUT
        assert stats.timed_out == 1
        assert stats.completed == 0

    def test_runner_default_timeout_applies(self):
        table = build_table(
            list(range(200)), [v % 3 for v in range(200)]
        )

        async def run():
            async with MiningJobRunner(
                max_concurrent_jobs=1, job_timeout=1e-6
            ) as runner:
                job = runner.submit(table, self.config())
                with pytest.raises(MiningJobTimeout):
                    await job.wait()
                # A per-submission override can lift the default.
                ok = runner.submit(table, self.config(), timeout=None)
                await ok.wait()
                return job, ok

        job, ok = asyncio.run(run())
        assert job.status == JOB_TIMED_OUT
        assert ok.status == JOB_COMPLETED

    def test_mining_timeout_without_budget_records_reason(self):
        # A TimeoutError escaping the mining work itself on a
        # budget-less job must not blow up the except handler trying to
        # format a None timeout; the job lands in timed_out cleanly.
        async def run():
            async with MiningJobRunner(max_concurrent_jobs=1) as runner:
                async def explode(job, table, progress):
                    raise TimeoutError("inner work timed out")

                runner._mine = explode
                job = runner.submit(small_table(), self.config())
                with pytest.raises(MiningJobTimeout):
                    await job.wait()
                return runner.stats, job

        stats, job = asyncio.run(run())
        assert job.status == JOB_TIMED_OUT
        assert job.cancel_reason == "timed out"
        assert stats.timed_out == 1

    def test_retention_cap_prunes_finished_jobs(self):
        table = small_table()

        async def run():
            async with MiningJobRunner(
                max_concurrent_jobs=2, max_retained_jobs=2
            ) as runner:
                for _ in range(5):
                    runner.submit(table, self.config())
                await runner.join()
                return runner

        runner = asyncio.run(run())
        assert len(runner.jobs) <= 2
        assert len(runner.stats.jobs) <= 2
        # Aggregate counters survive pruning.
        assert runner.stats.submitted == 5
        assert runner.stats.completed == 5

    def test_failed_job_raises_original_error(self):
        async def run():
            async with MiningJobRunner(max_concurrent_jobs=1) as runner:
                # A bogus table fails inside the job, not at submit.
                job = runner.submit(None, self.config())
                with pytest.raises(Exception):
                    await job.wait()
                return runner.stats, job

        stats, job = asyncio.run(run())
        assert job.status == "failed"
        assert stats.failed == 1

    def test_external_offload_pool_not_closed(self):
        table = small_table()
        pool = ThreadPoolExecutor(max_workers=1)
        try:
            async def run():
                async with MiningJobRunner(
                    max_concurrent_jobs=1, offload=pool
                ) as runner:
                    job = runner.submit(table, self.config())
                    await job.wait()

            asyncio.run(run())
            # Still usable after the runner closed: it never owned it.
            assert pool.submit(lambda: 42).result() == 42
        finally:
            pool.shutdown()

    def test_from_config_reads_async_block(self):
        config = MinerConfig(
            async_mining={"max_concurrent_jobs": 2, "job_timeout": 30.0}
        )
        runner = MiningJobRunner.from_config(config)
        assert runner.max_concurrent_jobs == 2
        assert runner.job_timeout == 30.0

    def test_submit_requires_running_loop(self):
        runner = MiningJobRunner(max_concurrent_jobs=1)
        with pytest.raises(RuntimeError):
            runner.submit(small_table(), self.config())


class TestAsyncConfigBlock:
    def test_defaults_resolve(self):
        config = MinerConfig()
        assert config.async_mining.max_concurrent_jobs is None
        assert config.async_mining.resolved_max_concurrent_jobs >= 1
        assert config.async_mining.job_timeout is None

    def test_dict_normalization(self):
        config = MinerConfig(async_mining={"max_concurrent_jobs": 4})
        assert config.async_mining.max_concurrent_jobs == 4

    def test_validation(self):
        from repro.core import AsyncConfig

        with pytest.raises(ValueError):
            AsyncConfig(max_concurrent_jobs=0)
        with pytest.raises(ValueError):
            AsyncConfig(job_timeout=0.0)
        with pytest.raises(TypeError):
            MinerConfig(async_mining="fast")

    def test_async_block_not_in_cache_key(self, tmp_path):
        # Purely operational settings must not fragment the cache: the
        # same mining work keyed under different concurrency limits
        # would never share artifacts.
        table = small_table()
        cache = MemoryCache()
        base = dict(min_support=0.2, min_confidence=0.4)

        async def run(config):
            return await mine_quantitative_rules_async(
                table, MinerConfig(**config), cache=cache
            )

        asyncio.run(run(base))
        asyncio.run(
            run({**base, "async_mining": {"max_concurrent_jobs": 7}})
        )
        assert cache.hits > 0


class TestCancelCompletionRace:
    """A cancel that races natural completion must lose cleanly.

    ``Task.cancel()`` can return True (the task is not done) and stamp
    a cancel reason, yet the job coroutine may already be past its last
    suspension point and complete normally — the CancelledError is
    never delivered.  The job must then report a clean ``completed``
    status with no lingering cancel reason: completed means completed.
    """

    def test_cancel_racing_completion_completes_clean(self):
        table = small_table()
        config = MinerConfig(min_support=0.2, min_confidence=0.5)
        expected = mine_quantitative_rules(table, config)
        transitions = []

        async def run():
            async with MiningJobRunner(max_concurrent_jobs=1) as runner:
                async def racing_mine(job, table_, progress):
                    # Simulate the race deterministically: cancel lands
                    # while the coroutine is in its final synchronous
                    # stretch, so Task.cancel() accepts (and stamps a
                    # reason) but the job still finishes first.
                    assert job.cancel(reason="raced too late")
                    assert job.cancel_reason == "raced too late"
                    return expected

                runner._mine = racing_mine
                job = runner.submit(
                    table,
                    config,
                    status_hook=lambda j: transitions.append(
                        (j.status, j.cancel_reason)
                    ),
                )
                result = await job.wait()
                return runner.stats, job, result

        stats, job, result = asyncio.run(run())
        assert job.status == JOB_COMPLETED
        assert job.cancel_reason is None
        assert job.job_stats().cancel_reason is None
        assert result is expected
        assert stats.completed == 1
        assert stats.cancelled == 0
        # The terminal transition the hook observed is the clean one.
        assert transitions[-1] == (JOB_COMPLETED, None)

    def test_cancel_after_completion_reports_false(self):
        table = small_table()
        config = MinerConfig(min_support=0.2, min_confidence=0.5)

        async def run():
            async with MiningJobRunner() as runner:
                job = runner.submit(table, config)
                await job.wait()
                assert not job.cancel(reason="way too late")
                return job

        job = asyncio.run(run())
        assert job.status == JOB_COMPLETED
        assert job.cancel_reason is None

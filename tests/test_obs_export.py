"""Exporters: JSONL round-trip, Chrome trace schema, validators, report."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace_document,
    read_spans_jsonl,
    render_timing_report,
    span_from_record,
    span_to_record,
    validate_chrome_trace,
    validate_metrics_snapshot,
    validate_span_record,
    validate_spans_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)


def traced_run():
    """A small but structurally complete trace: run > stage > shards."""
    tracer = Tracer()
    run = tracer.start_span("mine", kind="run", records=30)
    with tracer.span("frequent_items", "stage", parent=run) as stage:
        stage.set(cache="miss")
        for i in range(3):
            tracer.record(
                f"frequent_items[{i}]",
                "shard_task",
                stage,
                duration=0.01 * (i + 1),
                thread=f"frequent_items/task-{i}",
                stage="item_histograms",
                task=i,
            )
    run.finish(rules=4)
    return tracer


class TestJsonlRoundTrip:
    def test_record_round_trip_preserves_everything(self):
        for span in traced_run().spans():
            clone = span_from_record(
                json.loads(json.dumps(span_to_record(span)))
            )
            assert clone == span

    def test_file_round_trip(self, tmp_path):
        spans = traced_run().spans()
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(spans, path)
        assert read_spans_jsonl(path) == spans

    def test_written_log_validates_clean(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(traced_run().spans(), path)
        assert validate_spans_jsonl(path) == []


class TestSpanValidators:
    def test_missing_field_flagged(self):
        record = span_to_record(traced_run().spans()[0])
        del record["duration"]
        assert any(
            "duration" in error for error in validate_span_record(record)
        )

    def test_wrong_type_flagged(self):
        record = span_to_record(traced_run().spans()[0])
        record["span_id"] = "one"
        assert validate_span_record(record)

    def test_bool_is_not_a_number(self):
        record = span_to_record(traced_run().spans()[0])
        record["start"] = True
        assert validate_span_record(record)

    def test_unknown_field_flagged(self):
        record = span_to_record(traced_run().spans()[0])
        record["surprise"] = 1
        assert any(
            "surprise" in error for error in validate_span_record(record)
        )

    def test_negative_duration_flagged(self):
        record = span_to_record(traced_run().spans()[0])
        record["duration"] = -1.0
        assert any(
            "negative" in error for error in validate_span_record(record)
        )

    def test_dangling_parent_flagged(self, tmp_path):
        spans = traced_run().spans()
        orphan = spans[0]
        orphan.parent_id = 999
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(spans, path)
        assert any(
            "missing parent" in error
            for error in validate_spans_jsonl(path)
        )

    def test_empty_log_flagged(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("")
        assert validate_spans_jsonl(path) == ["no span records found"]

    def test_garbage_line_flagged(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("not json\n")
        assert any(
            "not valid JSON" in error
            for error in validate_spans_jsonl(path)
        )


class TestChromeTrace:
    def test_document_structure(self):
        tracer = traced_run()
        document = chrome_trace_document(tracer.spans(), tracer.epoch_wall)
        assert document["displayTimeUnit"] == "ms"
        complete = [
            e for e in document["traceEvents"] if e["ph"] == "X"
        ]
        metadata = [
            e for e in document["traceEvents"] if e["ph"] == "M"
        ]
        assert len(complete) == len(tracer.spans())
        # One named lane per distinct (pid, thread) pair; the three
        # shard tasks carry synthetic per-task lanes.
        lanes = {e["args"]["name"] for e in metadata}
        assert {
            f"frequent_items/task-{i}" for i in range(3)
        } <= lanes

    def test_events_carry_span_identity_and_microseconds(self):
        tracer = traced_run()
        document = chrome_trace_document(tracer.spans(), tracer.epoch_wall)
        by_id = {
            e["args"]["span_id"]: e
            for e in document["traceEvents"]
            if e["ph"] == "X"
        }
        for span in tracer.spans():
            event = by_id[span.span_id]
            assert event["cat"] == span.kind
            assert event["dur"] == pytest.approx(span.duration * 1e6)
            assert event["args"]["parent_id"] == span.parent_id

    def test_written_file_validates_clean(self, tmp_path):
        tracer = traced_run()
        path = tmp_path / "trace.chrome.json"
        write_chrome_trace(tracer.spans(), path, tracer.epoch_wall)
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []

    def test_validator_rejects_malformed(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "no"}) != []
        assert validate_chrome_trace({"traceEvents": []}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "B", "name": "x"}]}
        ) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "x"}]}
        ) != []


class TestMetricsValidator:
    def test_real_snapshot_validates_clean(self):
        registry = MetricsRegistry()
        registry.counter("cache.hit").increment()
        registry.gauge("run.records").set(30)
        registry.histogram("stage_seconds.pass_2").observe(0.5)
        assert validate_metrics_snapshot(registry.snapshot()) == []

    def test_malformed_snapshots_flagged(self):
        assert validate_metrics_snapshot([]) != []
        assert validate_metrics_snapshot({}) != []
        assert validate_metrics_snapshot(
            {"counters": {"c": 1.5}, "gauges": {}, "histograms": {}}
        ) != []
        assert validate_metrics_snapshot(
            {"counters": {}, "gauges": {"g": True}, "histograms": {}}
        ) != []
        assert validate_metrics_snapshot(
            {"counters": {}, "gauges": {}, "histograms": {"h": {}}}
        ) != []
        assert validate_metrics_snapshot(
            {
                "counters": {},
                "gauges": {},
                "histograms": {},
                "extras": {},
            }
        ) != []


class TestTimingReport:
    def test_tree_shards_and_metrics_render(self):
        tracer = traced_run()
        registry = MetricsRegistry()
        registry.counter("cache.miss").increment()
        registry.gauge("run.rules").set(4)
        registry.histogram("shard_seconds.item_histograms").observe(0.01)
        report = render_timing_report(tracer.spans(), registry.snapshot())
        assert "mine [run]" in report
        assert "frequent_items [stage] cache=miss" in report
        assert "3 shard task(s)" in report
        assert "cache.miss: 1" in report
        assert "run.rules: 4" in report
        # Stage nesting renders as indentation under the run.
        run_line, stage_line = report.splitlines()[:2]
        assert not run_line.startswith(" ")
        assert stage_line.startswith("  ")

    def test_empty_trace_renders_placeholder(self):
        assert "(no spans recorded)" in render_timing_report([])

"""Unit tests for the interest measure (repro.core.interest, Section 4)."""

import pytest

from repro.core import (
    InterestEvaluator,
    Item,
    MinerConfig,
    QuantitativeRule,
    SUPPORT_AND_CONFIDENCE,
    TableMapper,
    generate_rules,
    make_itemset,
)
from repro.core.apriori_quant import find_frequent_itemsets
from repro.table import RelationalTable, TableSchema, categorical, quantitative


def build_environment(records, config, schema=None):
    """Mine a small table and return (evaluator, support_counts, rules)."""
    if schema is None:
        schema = TableSchema(
            [quantitative("x"), categorical("y", ("no", "yes"))]
        )
    table = RelationalTable.from_records(schema, records)
    mapper = TableMapper(table, config)
    support_counts, freq = find_frequent_itemsets(mapper, config)
    rules = generate_rules(
        support_counts, table.num_records, config.min_confidence
    )
    evaluator = InterestEvaluator(support_counts, freq, mapper, config)
    return evaluator, support_counts, rules


def quarter_table():
    """x uniform over 0..7; y=yes with rate 0.7 on x in [0,3], 0.1 above.

    Within [0, 3] the y-rate is flat, so every specialization of
    "<x: 0..3> => <y: yes>" matches its expectation exactly.
    """
    records = []
    for v in range(8):
        yes_count = 70 if v <= 3 else 10
        records.extend((v, "yes") for _ in range(yes_count))
        records.extend((v, "no") for _ in range(100 - yes_count))
    return records


CONFIG = MinerConfig(
    min_support=0.05,
    min_confidence=0.3,
    max_support=0.55,
    interest_level=1.1,
)


@pytest.fixture
def env():
    return build_environment(quarter_table(), CONFIG)


class TestExpectations:
    def test_item_probability_exact(self, env):
        evaluator, *_ = env
        assert evaluator.item_probability(Item(0, 0, 3)) == pytest.approx(
            0.5
        )
        assert evaluator.item_probability(Item(1, 1, 1)) == pytest.approx(
            0.4
        )

    def test_expected_support_projection(self, env):
        evaluator, *_ = env
        whole = make_itemset([Item(0, 0, 3), Item(1, 1, 1)])
        part = make_itemset([Item(0, 0, 1), Item(1, 1, 1)])
        # Pr(x in [0,1]) / Pr(x in [0,3]) = 0.5 -> expected = 0.5 * actual.
        expected = evaluator.expected_support(part, whole)
        assert expected == pytest.approx(
            0.5 * evaluator.itemset_support(whole)
        )

    def test_uniform_region_meets_expectation_exactly(self, env):
        evaluator, *_ = env
        whole = make_itemset([Item(0, 0, 3), Item(1, 1, 1)])
        part = make_itemset([Item(0, 0, 1), Item(1, 1, 1)])
        assert evaluator.itemset_support(part) == pytest.approx(
            evaluator.expected_support(part, whole)
        )

    def test_expected_confidence_uses_consequent_only(self, env):
        evaluator, *_ = env
        general = QuantitativeRule(
            (Item(0, 0, 3),), (Item(1, 1, 1),), 0.35, 0.7
        )
        specific = QuantitativeRule(
            (Item(0, 0, 1),), (Item(1, 1, 1),), 0.175, 0.7
        )
        # Consequents identical -> expected confidence = ancestor's.
        assert evaluator.expected_confidence(
            specific, general
        ) == pytest.approx(0.7)

    def test_on_demand_support_counting(self, env):
        evaluator, support_counts, _ = env
        infrequent = make_itemset([Item(0, 7, 7), Item(1, 1, 1)])
        assert infrequent not in support_counts
        # 10 yes records at x=7 out of 800.
        assert evaluator.itemset_support(infrequent) == pytest.approx(
            10 / 800
        )
        assert evaluator.stats.on_demand_supports == 1


class TestFilterRules:
    def test_uninteresting_specializations_dropped(self, env):
        evaluator, _, rules = env
        general_key = (
            make_itemset([Item(0, 0, 3)]),
            make_itemset([Item(1, 1, 1)]),
        )
        child_key = (
            make_itemset([Item(0, 0, 1)]),
            make_itemset([Item(1, 1, 1)]),
        )
        keys = {(r.antecedent, r.consequent) for r in rules}
        assert general_key in keys and child_key in keys
        interesting = evaluator.filter_rules(rules)
        kept = {(r.antecedent, r.consequent) for r in interesting}
        assert general_key in kept
        # The specialization tracks expectation exactly -> dropped.
        assert child_key not in kept

    def test_disabled_interest_keeps_everything(self):
        config = MinerConfig(
            min_support=0.05,
            min_confidence=0.3,
            max_support=0.55,
            interest_level=None,
        )
        evaluator, _, rules = build_environment(quarter_table(), config)
        assert evaluator.filter_rules(rules) == list(rules)
        assert evaluator.stats.fraction_interesting == 1.0

    def test_r_zero_prunes_nothing(self):
        config = MinerConfig(
            min_support=0.05,
            min_confidence=0.3,
            max_support=0.55,
            interest_level=0.0,
        )
        evaluator, _, rules = build_environment(quarter_table(), config)
        assert len(evaluator.filter_rules(rules)) == len(rules)

    def test_higher_r_prunes_no_less(self):
        kept = {}
        for r_level in (1.05, 1.3, 2.0):
            config = MinerConfig(
                min_support=0.05,
                min_confidence=0.3,
                max_support=0.55,
                interest_level=r_level,
            )
            evaluator, _, rules = build_environment(quarter_table(), config)
            kept[r_level] = len(evaluator.filter_rules(rules))
        assert kept[1.05] >= kept[1.3] >= kept[2.0]

    def test_and_mode_no_weaker_than_or_mode(self):
        base = dict(
            min_support=0.05,
            min_confidence=0.3,
            max_support=0.55,
            interest_level=1.1,
        )
        or_eval, _, rules = build_environment(
            quarter_table(), MinerConfig(**base)
        )
        and_eval, _, rules2 = build_environment(
            quarter_table(),
            MinerConfig(**base, interest_mode=SUPPORT_AND_CONFIDENCE),
        )
        or_kept = {
            (r.antecedent, r.consequent)
            for r in or_eval.filter_rules(rules)
        }
        and_kept = {
            (r.antecedent, r.consequent)
            for r in and_eval.filter_rules(rules2)
        }
        assert and_kept <= or_kept

    def test_most_general_rules_always_kept(self, env):
        evaluator, _, rules = env
        interesting = evaluator.filter_rules(rules)
        kept = {(r.antecedent, r.consequent) for r in interesting}
        # A rule with no ancestors in the rule set must survive.
        for rule in rules:
            has_ancestor = any(
                other.is_ancestor_of(rule) for other in rules
            )
            if not has_ancestor:
                assert (rule.antecedent, rule.consequent) in kept

    def test_deterministic(self, env):
        evaluator, _, rules = env
        first = evaluator.filter_rules(rules)
        evaluator2, _, rules2 = build_environment(quarter_table(), CONFIG)
        assert first == evaluator2.filter_rules(rules2)


class TestSpecializationMachinery:
    def test_corange_index_matches_bucket_scan(self, env):
        evaluator, support_counts, _ = env
        # Cross-validate _expressible_differences against the direct
        # definition (scan for specializations, subtract).
        from repro.core.items import (
            is_strict_generalization,
            subtract_specialization,
        )

        for itemset in list(support_counts)[:200]:
            got = set(evaluator._expressible_differences(itemset))
            want = set()
            for other in support_counts:
                if is_strict_generalization(itemset, other):
                    diff = subtract_specialization(itemset, other)
                    if diff is not None:
                        want.add(diff)
            assert got == want

    def test_specializations_of_matches_definition(self, env):
        evaluator, support_counts, _ = env
        from repro.core.items import is_strict_generalization

        probe = make_itemset([Item(0, 0, 3), Item(1, 1, 1)])
        got = set(evaluator._specializations_of(probe))
        want = {
            other
            for other in support_counts
            if is_strict_generalization(probe, other)
        }
        assert got == want

"""The ``/v1/rulesets`` routes: publish once, point-query forever.

An in-process server exercises the full loop — mine a goal-directed job
over HTTP, publish its result as a ruleset (by job id and by inline
document), then prove ``/match`` and ``/predict`` answer through the
index with exactly the payloads the library-level
:class:`~repro.rules.RuleIndex` computes.  Hostile ids and malformed
bodies must die at the parse layer with a 400, never reach storage.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import mine_quantitative_rules
from repro.core.export import result_to_document
from repro.data import generate_credit_table
from repro.obs import Observability
from repro.rules import RuleIndex
from repro.serve import (
    ApiError,
    MiningHTTPServer,
    MiningService,
    parse_rule_query,
    parse_ruleset_upload,
)
from repro.table import save_csv

CONFIG = {
    "min_support": 0.15,
    "min_confidence": 0.5,
    "max_support": 0.45,
    "num_partitions": 6,
    "max_itemset_size": 2,
    "interest_level": 1.1,
    "target": "employee_category",
}

RECORD = {"monthly_income": 3000.0, "credit_limit": 5000.0}


@pytest.fixture(scope="module")
def credit_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("csv") / "credit.csv"
    save_csv(generate_credit_table(300, seed=9), path)
    return path.read_text()


@pytest.fixture(scope="module")
def reference(credit_csv, tmp_path_factory):
    """The same mine run directly — served answers must equal its."""
    from repro.table import load_csv

    path = tmp_path_factory.mktemp("ref") / "credit.csv"
    path.write_text(credit_csv)
    table = load_csv(
        path, categorical=["employee_category", "marital_status"]
    )
    return mine_quantitative_rules(table, **CONFIG)


@pytest.fixture
def server():
    service = MiningService(observability=Observability()).start()
    http_server = MiningHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(
        target=http_server.serve_forever, daemon=True
    )
    thread.start()
    yield http_server
    http_server.shutdown()
    thread.join(timeout=10)
    http_server.server_close()
    service.shutdown(drain_seconds=0)


def request(server, method, path, payload=None):
    req = urllib.request.Request(
        f"{server.url}{path}",
        data=None if payload is None else json.dumps(payload).encode(),
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


def mine_job(server, credit_csv, job_id="goal-job"):
    status, payload = request(
        server,
        "POST",
        "/v1/jobs",
        {
            "table": {
                "csv": credit_csv,
                "categorical": ["employee_category", "marital_status"],
            },
            "config": CONFIG,
            "job_id": job_id,
        },
    )
    assert status == 201, payload
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        status, payload = request(server, "GET", f"/v1/jobs/{job_id}")
        if payload["status"] in ("completed", "failed"):
            break
        time.sleep(0.2)
    assert payload["status"] == "completed", payload
    return job_id


class TestRulesetRoutes:
    def test_publish_job_then_match_and_predict(
        self, server, credit_csv, reference
    ):
        job_id = mine_job(server, credit_csv)
        status, metadata = request(
            server, "POST", "/v1/rulesets", {"job_id": job_id}
        )
        assert status == 201, metadata
        assert metadata["ruleset_id"] == job_id  # defaults to the job id
        assert metadata["indexed"] is True
        assert metadata["num_rules"] == len(reference.interesting_rules)

        status, listing = request(server, "GET", "/v1/rulesets")
        assert status == 200
        assert [r["ruleset_id"] for r in listing["rulesets"]] == [job_id]

        status, one = request(server, "GET", f"/v1/rulesets/{job_id}")
        assert status == 200 and one == metadata

        index = RuleIndex.from_result(reference)
        expected = index.match(RECORD)
        status, answer = request(
            server,
            "POST",
            f"/v1/rulesets/{job_id}/match",
            {"record": RECORD},
        )
        assert status == 200
        assert answer["num_matches"] == len(expected)
        got = [
            (m["confidence"], m["score"], m["lift"])
            for m in answer["matches"]
        ]
        assert got == [
            (m.rule.confidence, m.score, m.lift) for m in expected
        ]

        prediction = index.predict(RECORD, "employee_category", top=2)
        status, answer = request(
            server,
            "POST",
            f"/v1/rulesets/{job_id}/predict",
            {"record": RECORD, "target": "employee_category", "top": 2},
        )
        assert status == 200
        assert len(answer["matches"]) == len(prediction.matches)
        if prediction.interval is None:
            assert answer["prediction"] is None
        else:
            assert answer["prediction"]["lo"] == prediction.interval[0]
            assert answer["prediction"]["hi"] == prediction.interval[1]
            assert answer["prediction"]["display"] == prediction.display

    def test_inline_document_upload(self, server, reference):
        document = result_to_document(reference)
        status, metadata = request(
            server,
            "POST",
            "/v1/rulesets",
            {"ruleset_id": "inline", "document": document},
        )
        assert status == 201, metadata
        status, answer = request(
            server,
            "POST",
            "/v1/rulesets/inline/match",
            {"record": RECORD, "top": 1},
        )
        assert status == 200 and len(answer["matches"]) <= 1

    def test_unfinished_job_is_a_409(self, server, credit_csv):
        # A job id that exists but has no result document yet.
        status, _ = request(
            server,
            "POST",
            "/v1/jobs",
            {
                "table": {"csv": credit_csv},
                "config": dict(CONFIG, min_support=0.1),
                "job_id": "slow-job",
            },
        )
        assert status == 201
        status, payload = request(
            server, "POST", "/v1/rulesets", {"job_id": "slow-job"}
        )
        assert status in (409, 201)  # 201 only if it raced to completion

    def test_error_statuses(self, server, reference):
        document = result_to_document(reference)
        request(
            server,
            "POST",
            "/v1/rulesets",
            {"ruleset_id": "errs", "document": document},
        )
        cases = [
            ("GET", "/v1/rulesets/..evil", None, 400),
            ("GET", "/v1/rulesets/absent", None, 404),
            ("POST", "/v1/rulesets", {"job_id": "no-such-job"}, 404),
            ("POST", "/v1/rulesets", {"ruleset_id": "x"}, 400),
            (
                "POST",
                "/v1/rulesets",
                {"ruleset_id": "../up", "document": document},
                400,
            ),
            (
                "POST",
                "/v1/rulesets/errs/match",
                {"record": {"not_an_attribute": 1}},
                400,
            ),
            ("POST", "/v1/rulesets/errs/match", {"record": []}, 400),
            ("POST", "/v1/rulesets/errs/predict", {"record": {}}, 400),
            (
                "POST",
                "/v1/rulesets/errs/predict",
                {"record": {}, "target": "nope"},
                400,
            ),
            (
                "POST",
                "/v1/rulesets/absent/match",
                {"record": {}},
                404,
            ),
            (
                "POST",
                "/v1/rulesets/errs/match",
                {"record": {}, "surprise": 1},
                400,
            ),
        ]
        for method, path, payload, expected in cases:
            status, body = request(server, method, path, payload)
            assert status == expected, (method, path, status, body)


class TestUploadParsing:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ApiError, match="exactly one"):
            parse_ruleset_upload({"ruleset_id": "x"})
        with pytest.raises(ApiError, match="exactly one"):
            parse_ruleset_upload(
                {"ruleset_id": "x", "document": {}, "job_id": "j"}
            )

    def test_ruleset_id_defaults_to_job_id(self):
        parsed = parse_ruleset_upload({"job_id": "job-1"})
        assert parsed == {"job_id": "job-1", "ruleset_id": "job-1"}

    def test_inline_document_requires_explicit_id(self):
        with pytest.raises(ApiError, match="ruleset_id"):
            parse_ruleset_upload({"document": {}})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ApiError, match="unknown"):
            parse_ruleset_upload(
                {"ruleset_id": "x", "document": {}, "extra": 1}
            )


class TestQueryParsing:
    def test_match_rejects_target(self):
        with pytest.raises(ApiError, match="unknown"):
            parse_rule_query({"record": {}, "target": "x"})

    def test_predict_requires_target(self):
        with pytest.raises(ApiError, match="target"):
            parse_rule_query({"record": {}}, require_target=True)

    @pytest.mark.parametrize("top", [0, -1, True, 1.5, "3"])
    def test_bad_top_rejected(self, top):
        with pytest.raises(ApiError, match="top"):
            parse_rule_query({"record": {}, "top": top})

    def test_valid_bodies_normalize(self):
        assert parse_rule_query({"record": {"a": 1}}) == {
            "record": {"a": 1},
            "top": None,
        }
        assert parse_rule_query(
            {"record": {}, "target": "t", "top": 3}, require_target=True
        ) == {"record": {}, "top": 3, "target": "t"}

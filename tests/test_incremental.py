"""Incremental shard-level dataflow tests.

Covers the append-aware table (code-preserving appends, fingerprint
memo invalidation), per-shard count artifacts (reuse limited to the
clean prefix, bit-identical merges), online partition maintenance
(kept partitions vs. forced re-partition, artifact GC), the bounded
disk cache, and the serve-layer append surface — including a
property-based equivalence: mine -> append -> mine must equal a cold
mine of the concatenated table, across counting backends, executors
and cache backends.
"""

import json
import math
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AppendReport,
    IncrementalConfig,
    MinerConfig,
    QuantitativeMiner,
)
from repro.engine.cache import MISSING, DiskCache
from repro.engine.shards import plan_shards
from repro.table import (
    RelationalTable,
    TableSchema,
    categorical,
    quantitative,
)

SCHEMA = TableSchema(
    [
        quantitative("x"),
        quantitative("y"),
        categorical("c", ("a", "b")),
    ]
)


def build_rows(n, seed, values=6):
    rng = np.random.default_rng(seed)
    return [
        (float(x), float(y), "a" if m else "b")
        for x, y, m in zip(
            rng.integers(0, values, n),
            rng.integers(0, values, n),
            rng.integers(0, 2, n),
        )
    ]


def incremental_config(shard_size=32, **overrides):
    base = dict(
        min_support=0.2,
        min_confidence=0.3,
        max_support=0.6,
        partial_completeness=3.0,
        incremental=IncrementalConfig(enabled=True, shard_size=shard_size),
    )
    base.update(overrides)
    return MinerConfig(**base)


# ----------------------------------------------------------------------
# Append-aware table
# ----------------------------------------------------------------------
class TestTableAppend:
    def test_fingerprint_memo_invalidated_by_append(self):
        """Regression: a memoized fingerprint must not survive growth."""
        rows = build_rows(50, seed=1)
        extra = build_rows(10, seed=2)
        table = RelationalTable.from_records(SCHEMA, rows)
        before = table.fingerprint()  # memoize pre-append
        table.append(extra)
        after = table.fingerprint()
        assert after != before
        cold = RelationalTable.from_records(SCHEMA, rows + extra)
        assert after == cold.fingerprint()
        # And the memo itself is consistent: re-asking returns the same.
        assert table.fingerprint() == after

    def test_append_preserves_codes_and_extends_domains(self):
        rows = [(1.0, 2.0, "a"), (3.0, 4.0, "b")]
        table = RelationalTable.from_records(SCHEMA, rows)
        codes_before = table.column("c").copy()
        table.append([(5.0, 6.0, "zz")])
        attr = table.schema.attribute("c")
        assert attr.values == ("a", "b", "zz")
        np.testing.assert_array_equal(
            table.column("c")[:2], codes_before
        )
        assert table.decode("c", int(table.column("c")[2])) == "zz"

    def test_prefix_shard_fingerprints_survive_append(self):
        rows = build_rows(100, seed=3)
        table = RelationalTable.from_records(SCHEMA, rows)
        shards = plan_shards(100, shard_size=32)
        before = table.shard_fingerprints(shards)
        table.append(build_rows(20, seed=4))
        grown = plan_shards(120, shard_size=32)
        after = table.shard_fingerprints(grown)
        # Shards fully inside the old prefix keep their fingerprints;
        # the shard spanning the old tail changes.
        for old_fp, new_fp, shard in zip(before, after, grown):
            if shard.stop <= 100:
                assert new_fp == old_fp
            else:
                assert new_fp != old_fp
        # Content-addressed: a cold table over the same records agrees.
        cold = RelationalTable.from_records(
            SCHEMA, rows + build_rows(20, seed=4)
        )
        assert cold.shard_fingerprints(grown) == after

    def test_iter_records_roundtrip_and_reorder(self):
        rows = build_rows(25, seed=5)
        table = RelationalTable.from_records(SCHEMA, rows)
        assert list(table.iter_records()) == rows
        reordered = list(table.iter_records(["c", "x", "y"]))
        assert reordered == [(c, x, y) for x, y, c in rows]


# ----------------------------------------------------------------------
# Bounded disk cache
# ----------------------------------------------------------------------
class TestDiskCacheBudget:
    def test_lru_eviction_under_max_bytes(self, tmp_path):
        import time

        cache = DiskCache(tmp_path, max_bytes=10_000)
        payload = b"x" * 4096  # ~4.1 KiB pickled: two fit, three don't
        cache.put("k1", payload)
        time.sleep(0.01)  # keep mtime-based recency unambiguous
        cache.put("k2", payload)
        time.sleep(0.01)
        assert cache.get("k1") == payload  # refresh k1's recency
        time.sleep(0.01)
        cache.put("k3", payload)  # over budget: k2 is the LRU victim
        assert cache.get("k2") is MISSING
        assert cache.get("k1") == payload
        assert cache.get("k3") == payload
        assert cache.evictions >= 1
        assert cache.total_bytes() <= 10_000

    def test_just_written_entry_is_never_the_victim(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=1)
        cache.put("only", [1, 2, 3])
        # The budget is smaller than any entry, but the entry just
        # written must survive its own enforcement pass.
        assert cache.get("only") == [1, 2, 3]

    def test_delete(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", "v")
        assert cache.delete("k") is True
        assert cache.get("k") is MISSING
        assert cache.delete("k") is False


# ----------------------------------------------------------------------
# Online maintenance through the miner
# ----------------------------------------------------------------------
class TestMinerAppend:
    def test_within_budget_append_recounts_only_dirty_shards(self):
        rows = build_rows(200, seed=7)
        # A full duplicate preserves every support *fraction*, so the
        # frequent items — and with them the pass-2+ candidate payloads
        # — are identical, and every stage's reuse is governed purely
        # by which shards the append dirtied.
        extra = list(rows)
        config = incremental_config(shard_size=32)
        miner = QuantitativeMiner(
            RelationalTable.from_records(SCHEMA, rows), config
        )
        miner.mine()
        report = miner.append(extra)
        assert isinstance(report, AppendReport)
        assert not report.repartitioned
        assert report.records_appended == 200
        result = miner.mine()
        total = math.ceil(400 / 32)
        dirty = sum(
            1 for s in plan_shards(400, shard_size=32) if s.stop > 200
        )
        for stage, (hits, misses) in (
            result.stats.execution.stage_shard_cache.items()
        ):
            assert misses == dirty, stage
            assert hits == total - dirty, stage
        cold = QuantitativeMiner(
            RelationalTable.from_records(SCHEMA, rows + extra), config
        ).mine()
        assert result.support_counts == cold.support_counts
        assert result.rules == cold.rules

    def test_unabsorbable_append_repartitions_and_gcs_artifacts(self):
        rows = build_rows(200, seed=8)
        config = incremental_config(shard_size=32)
        miner = QuantitativeMiner(
            RelationalTable.from_records(SCHEMA, rows), config
        )
        miner.mine()
        # 9.0 was never seen: the value-mapped encoding cannot absorb
        # it, so the miner must fall back to a cold re-partition and
        # garbage-collect the now-orphaned shard artifacts.
        extra = [(9.0, 9.0, "a")] * 10
        report = miner.append(extra)
        assert report.repartitioned
        assert report.reason
        assert report.artifacts_gc > 0
        result = miner.mine()
        cold = QuantitativeMiner(
            RelationalTable.from_records(SCHEMA, rows + extra), config
        ).mine()
        assert result.support_counts == cold.support_counts
        assert result.rules == cold.rules

    def test_append_report_is_json_friendly(self):
        rows = build_rows(80, seed=9)
        miner = QuantitativeMiner(
            RelationalTable.from_records(SCHEMA, rows),
            incremental_config(shard_size=16),
        )
        miner.mine()
        report = miner.append(rows[:8])
        assert type(report.realized_completeness) is float
        assert type(report.completeness_budget) is float
        json.dumps(report.__dict__)  # must not smuggle numpy scalars


# ----------------------------------------------------------------------
# Property: incremental re-mine == cold mine of the concatenated table
# ----------------------------------------------------------------------
class TestIncrementalEquivalence:
    @given(
        st.integers(0, 10_000),
        st.integers(60, 160),
        st.integers(1, 60),
        st.floats(0.1, 0.33),
        st.sampled_from(["array", "bitmap", "direct", "rtree"]),
        st.sampled_from([8, 32]),
        st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_append_then_mine_matches_cold_mine(
        self, seed, n, extra_n, minsup, backend, shard_size, novel
    ):
        rows = build_rows(n, seed=seed)
        # 'novel' appends draw from a wider value set, so some runs
        # force the re-partition branch; the equivalence must hold on
        # both paths.
        extra = build_rows(
            extra_n, seed=seed + 1, values=8 if novel else 6
        )
        config = incremental_config(
            shard_size=shard_size, min_support=minsup, counting=backend
        )
        miner = QuantitativeMiner(
            RelationalTable.from_records(SCHEMA, rows), config
        )
        miner.mine()
        report = miner.append(extra)
        result = miner.mine()
        cold = QuantitativeMiner(
            RelationalTable.from_records(SCHEMA, rows + extra), config
        ).mine()
        assert result.support_counts == cold.support_counts
        assert result.rules == cold.rules
        if not report.repartitioned:
            total = math.ceil((n + extra_n) / shard_size)
            dirty = sum(
                1
                for s in plan_shards(n + extra_n, shard_size=shard_size)
                if s.stop > n
            )
            hits, misses = (
                result.stats.execution.stage_shard_cache["item_histograms"]
            )
            assert misses == dirty
            assert hits == total - dirty

    @pytest.mark.parametrize("cache_backend", ["memory", "disk"])
    def test_equivalence_across_cache_backends(
        self, cache_backend, tmp_path
    ):
        cache = {"backend": cache_backend}
        if cache_backend == "disk":
            cache["directory"] = str(tmp_path)
        rows = build_rows(150, seed=11)
        extra = rows[:30]
        config = incremental_config(shard_size=32, cache=cache)
        miner = QuantitativeMiner(
            RelationalTable.from_records(SCHEMA, rows), config
        )
        miner.mine()
        miner.append(extra)
        result = miner.mine()
        assert result.stats.execution.shard_cache_hits > 0
        cold = QuantitativeMiner(
            RelationalTable.from_records(SCHEMA, rows + extra), config
        ).mine()
        assert result.support_counts == cold.support_counts
        assert result.rules == cold.rules

    def test_equivalence_under_parallel_executor(self):
        rows = build_rows(400, seed=12)
        extra = rows[:80]
        config = incremental_config(
            shard_size=64,
            execution={"executor": "parallel", "num_workers": 2},
        )
        miner = QuantitativeMiner(
            RelationalTable.from_records(SCHEMA, rows), config
        )
        miner.mine()
        report = miner.append(extra)
        assert not report.repartitioned
        result = miner.mine()
        cold = QuantitativeMiner(
            RelationalTable.from_records(SCHEMA, rows + extra), config
        ).mine()
        assert result.support_counts == cold.support_counts
        assert result.rules == cold.rules


# ----------------------------------------------------------------------
# Serve surface
# ----------------------------------------------------------------------
HEADER = "x,y,c"


def rows_to_csv(rows):
    return HEADER + "\n" + "\n".join(
        f"{x:g},{y:g},{c}" for x, y, c in rows
    ) + "\n"


class TestRegistryAppend:
    def test_append_grows_shared_table_and_durable_csv(self, tmp_path):
        from repro.serve.tables import TableRegistry, _load_csv_text

        registry = TableRegistry(tmp_path)
        rows = build_rows(60, seed=13)
        extra = build_rows(12, seed=14)
        registry.put_csv("t", rows_to_csv(rows), categorical=["c"])
        live = registry.get("t")
        description = registry.append_csv("t", rows_to_csv(extra))
        assert description["records_appended"] == 12
        assert description["num_records"] == 72
        # The cached instance grew in place.
        assert registry.get("t") is live
        assert live.num_records == 72
        # The durable CSV reparses to the identical grown table.
        reparsed = _load_csv_text(
            (tmp_path / "t.csv").read_text(),
            quantitative=[],
            categorical=["c"],
        )
        assert reparsed.fingerprint() == live.fingerprint()

    def test_append_reorders_fragment_columns(self):
        from repro.serve.tables import TableRegistry

        registry = TableRegistry()
        registry.put_csv(
            "t", rows_to_csv(build_rows(20, seed=15)), categorical=["c"]
        )
        fragment = "c,y,x\n" + "\n".join(
            f"{c},{y:g},{x:g}" for x, y, c in build_rows(5, seed=16)
        )
        description = registry.append_csv("t", fragment)
        assert description["records_appended"] == 5
        expected = build_rows(5, seed=16)
        got = list(registry.get("t").iter_records())[-5:]
        assert got == expected

    def test_append_rejects_mismatched_columns(self):
        from repro.serve.tables import TableRegistry, UnknownTableError

        registry = TableRegistry()
        registry.put_csv(
            "t", rows_to_csv(build_rows(10, seed=17)), categorical=["c"]
        )
        with pytest.raises(ValueError):  # missing column
            registry.append_csv("t", "x,y\n1,2\n")
        with pytest.raises(ValueError, match="do not match"):
            registry.append_csv("t", "x,y,c,d\n1,2,a,3\n")
        with pytest.raises(UnknownTableError):
            registry.append_csv("missing", rows_to_csv([]))


class TestParseAppend:
    def test_defaults_and_validation(self):
        from repro.serve import ApiError
        from repro.serve.protocol import parse_append

        out = parse_append({"csv": "x\n1\n"})
        assert out == {"csv": "x\n1\n", "mine": True, "config": {}}
        out = parse_append(
            {"csv": "x\n1\n", "mine": False, "timeout": 5, "job_id": "j1"}
        )
        assert out["mine"] is False
        assert out["timeout"] == 5.0
        assert out["job_id"] == "j1"
        for bad in (
            [],
            {},
            {"csv": " "},
            {"csv": "x\n1\n", "mine": "yes"},
            {"csv": "x\n1\n", "config": {"nope": 1}},
            {"csv": "x\n1\n", "timeout": -1},
            {"csv": "x\n1\n", "surprise": 1},
        ):
            with pytest.raises(ApiError):
                parse_append(bad)


class TestHttpAppend:
    @pytest.fixture
    def server(self):
        from repro.obs import Observability
        from repro.serve import MiningHTTPServer, MiningService

        service = MiningService(observability=Observability()).start()
        http_server = MiningHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(
            target=http_server.serve_forever, daemon=True
        )
        thread.start()
        yield http_server
        http_server.shutdown()
        thread.join(timeout=10)
        http_server.server_close()
        service.shutdown(drain_seconds=0)

    @staticmethod
    def request(server, method, path, body=None):
        req = urllib.request.Request(
            f"{server.url}{path}", data=body, method=method
        )
        try:
            with urllib.request.urlopen(req) as resp:
                return resp.status, json.load(resp)
        except urllib.error.HTTPError as exc:
            return exc.code, json.load(exc)

    def test_append_route_mines_incrementally(self, server):
        import time

        rows = build_rows(200, seed=18)
        status, _ = self.request(
            server,
            "PUT",
            "/v1/tables/t?categorical=c",
            rows_to_csv(rows).encode(),
        )
        assert status == 201
        body = json.dumps(
            {
                "csv": rows_to_csv(rows[:40]),
                "config": {
                    "min_support": 0.2,
                    "min_confidence": 0.3,
                    "max_support": 0.6,
                    "partial_completeness": 3.0,
                    "incremental": {"enabled": True, "shard_size": 32},
                },
            }
        ).encode()
        status, payload = self.request(
            server, "POST", "/v1/tables/t/append", body
        )
        assert status == 200, payload
        assert payload["records_appended"] == 40
        assert payload["table"]["num_records"] == 240
        job_id = payload["job"]["job_id"]
        deadline = time.time() + 30
        while time.time() < deadline:
            _, record = self.request(server, "GET", f"/v1/jobs/{job_id}")
            if record["status"] in ("completed", "failed"):
                break
            time.sleep(0.05)
        assert record["status"] == "completed", record
        cold = QuantitativeMiner(
            RelationalTable.from_records(SCHEMA, rows + rows[:40]),
            incremental_config(shard_size=32),
        ).mine()
        _, document = self.request(
            server, "GET", f"/v1/jobs/{job_id}/rules"
        )
        assert len(document["rules"]) == len(cold.rules)
        # The shared metrics registry saw the append.
        _, metrics = self.request(server, "GET", "/metrics")
        assert metrics["counters"]["incremental.appends"] == 1
        assert (
            metrics["counters"]["incremental.records_appended"] == 40
        )

    def test_append_without_mine_and_unknown_table(self, server):
        rows = build_rows(20, seed=19)
        self.request(
            server,
            "PUT",
            "/v1/tables/t?categorical=c",
            rows_to_csv(rows).encode(),
        )
        body = json.dumps(
            {"csv": rows_to_csv(rows[:5]), "mine": False}
        ).encode()
        status, payload = self.request(
            server, "POST", "/v1/tables/t/append", body
        )
        assert status == 200
        assert "job" not in payload
        status, _ = self.request(
            server, "POST", "/v1/tables/nope/append", body
        )
        assert status == 404

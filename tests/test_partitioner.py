"""Unit tests for repro.core.partitioner."""

import numpy as np
import pytest

from repro.core import equi_depth, equi_width, partition_column


class TestEquiDepth:
    def test_balanced_counts_on_uniform_data(self):
        column = np.arange(1000, dtype=float)
        part = equi_depth(column, 4)
        assert part.partitioned
        assert part.num_intervals == 4
        supports = part.interval_supports(column)
        np.testing.assert_allclose(supports, 0.25, atol=0.01)

    def test_few_distinct_values_stay_unpartitioned(self):
        column = np.array([1.0, 2.0, 2.0, 3.0])
        part = equi_depth(column, 10)
        assert not part.partitioned
        assert part.num_intervals == 3
        np.testing.assert_array_equal(part.assign(column), [0, 1, 1, 2])

    def test_unpartitioned_rejects_unseen_value(self):
        part = equi_depth(np.array([1.0, 2.0, 3.0]), 10)
        with pytest.raises(ValueError, match="not present"):
            part.assign(np.array([2.5]))

    def test_codes_cover_all_intervals(self):
        rng = np.random.default_rng(0)
        column = rng.normal(size=5000)
        part = equi_depth(column, 8)
        codes = part.assign(column)
        assert set(codes) == set(range(part.num_intervals))

    def test_heavy_ties_collapse_intervals(self):
        # ~80% of mass on one value: quantile edges dedupe, so the
        # realized interval count drops below the request.
        column = np.array([5.0] * 90 + list(range(20)), dtype=float)
        part = equi_depth(column, 10)
        assert part.partitioned
        assert part.num_intervals < 10

    def test_single_interval_when_one_distinct_value_forced(self):
        column = np.array([3.0, 3.0, 3.0])
        part = equi_depth(column, 2)
        assert not part.partitioned
        assert part.num_intervals == 1

    def test_interval_bounds_monotone(self):
        column = np.arange(100, dtype=float)
        part = equi_depth(column, 5)
        bounds = [part.interval_bounds(i) for i in range(5)]
        for (lo, hi), (lo2, _) in zip(bounds, bounds[1:]):
            assert lo < hi
            assert hi == lo2


class TestEquiWidth:
    def test_equal_width_edges(self):
        column = np.array([0.0, 100.0, 37.0, 62.0, 5.0])
        part = equi_width(column, 4)
        np.testing.assert_allclose(
            part.edges, [0.0, 25.0, 50.0, 75.0, 100.0]
        )

    def test_assignment(self):
        column = np.array([0.0, 100.0, 37.0, 62.0, 5.0])
        part = equi_width(column, 4)
        np.testing.assert_array_equal(
            part.assign(column), [0, 3, 1, 2, 0]
        )

    def test_max_value_lands_in_last_interval(self):
        column = np.linspace(0, 10, 50)
        part = equi_width(column, 5)
        assert part.assign(np.array([10.0]))[0] == 4

    def test_skewed_data_leaves_empty_intervals(self):
        # Mass at 0..10 plus one far outlier: equi-width wastes most
        # intervals on the empty middle of the range.
        column = np.array(
            list(np.linspace(0, 10, 99)) + [1000.0]
        )
        part = equi_width(column, 10)
        supports = part.interval_supports(column)
        assert (supports == 0).sum() >= 8  # middle intervals empty


class TestValidation:
    def test_empty_column_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            equi_depth(np.array([]), 2)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            equi_depth(np.array([1.0, np.nan]), 2)

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            equi_depth(np.zeros((2, 2)), 2)

    def test_zero_intervals_rejected(self):
        with pytest.raises(ValueError, match="num_intervals"):
            equi_depth(np.array([1.0, 2.0]), 0)

    def test_dispatch(self):
        column = np.arange(100, dtype=float)
        assert partition_column(column, 4, "equidepth").partitioned
        assert partition_column(column, 4, "equiwidth").partitioned
        with pytest.raises(ValueError, match="unknown"):
            partition_column(column, 4, "magic")


class TestMaxMultiValueSupport:
    def test_unpartitioned_is_zero(self):
        part = equi_depth(np.array([1.0, 2.0, 3.0]), 10)
        assert part.max_multi_value_support(np.array([1.0, 2.0, 3.0])) == 0.0

    def test_partitioned_matches_hand_count(self):
        column = np.array(
            [1, 1, 2, 2, 3, 3, 4, 4, 5, 5], dtype=float
        )
        part = equi_width(column, 2)  # [1, 3) and [3, 5]
        # Second interval holds {3,3,4,4,5,5}: support 0.6, multi-valued.
        assert part.max_multi_value_support(column) == pytest.approx(0.6)

    def test_single_value_intervals_excluded(self):
        # Interval [0, 5) holds only value 0 (90 copies) -> excluded from s
        # per the footnote in Section 3.2.
        column = np.array([0.0] * 90 + [5.0, 6.0] * 5)
        from repro.core import Partitioning

        part = Partitioning(edges=(0.0, 5.0, 6.5), partitioned=True)
        s = part.max_multi_value_support(column)
        assert s == pytest.approx(0.1)

"""Unit tests for repro.core.rulegen (quantitative ap-genrules)."""

import itertools

import pytest

from repro.core import (
    Item,
    MinerConfig,
    QuantitativeRule,
    TableMapper,
    generate_rules,
    make_itemset,
)
from repro.core.apriori_quant import find_frequent_itemsets
from repro.data import age_partition_edges, people_table


@pytest.fixture
def mined():
    mapper = TableMapper(
        people_table(),
        MinerConfig(
            min_support=0.4,
            max_support=0.6,
            num_partitions={"Age": age_partition_edges()},
        ),
    )
    config = MinerConfig(min_support=0.4, max_support=0.6)
    support_counts, _ = find_frequent_itemsets(mapper, config)
    return support_counts


def brute_force(support_counts, n, minconf):
    out = set()
    for itemset, count in support_counts.items():
        if len(itemset) < 2:
            continue
        for r in range(1, len(itemset)):
            for consequent in itertools.combinations(itemset, r):
                antecedent = tuple(
                    sorted(set(itemset) - set(consequent))
                )
                conf = count / support_counts[antecedent]
                if conf >= minconf:
                    out.add((antecedent, tuple(sorted(consequent))))
    return out


class TestGenerateRules:
    def test_paper_rule_present(self, mined):
        rules = generate_rules(mined, 5, 0.5)
        by_key = {(r.antecedent, r.consequent): r for r in rules}
        # <Age: 30..39> and <Married: Yes> => <NumCars: 2> (40%, 100%).
        key = (
            make_itemset([Item(0, 2, 3), Item(1, 0, 0)]),
            make_itemset([Item(2, 2, 2)]),
        )
        assert key in by_key
        assert by_key[key].support == pytest.approx(0.4)
        assert by_key[key].confidence == pytest.approx(1.0)

    def test_second_paper_rule(self, mined):
        rules = generate_rules(mined, 5, 0.5)
        by_key = {(r.antecedent, r.consequent): r for r in rules}
        # <NumCars: 0..1> => <Married: No> (40%, 66.6%).
        key = (
            make_itemset([Item(2, 0, 1)]),
            make_itemset([Item(1, 1, 1)]),
        )
        assert by_key[key].confidence == pytest.approx(2 / 3)

    @pytest.mark.parametrize("minconf", [0.0, 0.5, 0.75, 1.0])
    def test_matches_brute_force(self, mined, minconf):
        rules = generate_rules(mined, 5, minconf)
        got = {(r.antecedent, r.consequent) for r in rules}
        assert got == brute_force(mined, 5, minconf)

    def test_empty_on_no_records(self, mined):
        assert generate_rules(mined, 0, 0.5) == []

    def test_invalid_confidence(self, mined):
        with pytest.raises(ValueError):
            generate_rules(mined, 5, 2.0)

    def test_deterministic_order(self, mined):
        a = generate_rules(mined, 5, 0.5)
        b = generate_rules(mined, 5, 0.5)
        assert a == b
        keys = [r.sort_key() for r in a]
        assert keys == sorted(keys)


class TestQuantitativeRule:
    def test_disjoint_sides_enforced(self):
        with pytest.raises(ValueError, match="share"):
            QuantitativeRule(
                antecedent=(Item(0, 0, 1),),
                consequent=(Item(0, 2, 3),),
                support=0.1,
                confidence=0.5,
            )

    def test_empty_side_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            QuantitativeRule((), (Item(0, 0, 1),), 0.1, 0.5)

    def test_itemset_union(self):
        rule = QuantitativeRule(
            (Item(1, 0, 0),), (Item(0, 2, 3),), 0.4, 1.0
        )
        assert rule.itemset == (Item(0, 2, 3), Item(1, 0, 0))

    def test_is_ancestor_of(self):
        general = QuantitativeRule(
            (Item(0, 0, 5),), (Item(1, 0, 0),), 0.5, 0.8
        )
        specific = QuantitativeRule(
            (Item(0, 1, 4),), (Item(1, 0, 0),), 0.3, 0.8
        )
        assert general.is_ancestor_of(specific)
        assert not specific.is_ancestor_of(general)
        assert not general.is_ancestor_of(general)

    def test_generality_strictly_larger_for_ancestors(self):
        general = QuantitativeRule(
            (Item(0, 0, 5),), (Item(1, 0, 0),), 0.5, 0.8
        )
        specific = QuantitativeRule(
            (Item(0, 1, 4),), (Item(1, 0, 0),), 0.3, 0.8
        )
        assert general.generality() > specific.generality()

    def test_attribute_signature(self):
        rule = QuantitativeRule(
            (Item(1, 0, 0),), (Item(0, 2, 3),), 0.4, 1.0
        )
        assert rule.attribute_signature() == ((1,), (0,))

    def test_str(self):
        rule = QuantitativeRule(
            (Item(1, 0, 0),), (Item(0, 2, 3),), 0.4, 1.0
        )
        assert "=>" in str(rule)
        assert "100.0%" in str(rule)

"""Unit tests for repro.table.schema."""

import pytest

from repro.table import (
    Attribute,
    AttributeKind,
    TableSchema,
    categorical,
    quantitative,
)


class TestAttribute:
    def test_quantitative_constructor(self):
        a = quantitative("age")
        assert a.name == "age"
        assert a.is_quantitative
        assert not a.is_categorical

    def test_categorical_constructor_with_values(self):
        a = categorical("married", ("Yes", "No"))
        assert a.is_categorical
        assert a.values == ("Yes", "No")

    def test_categorical_without_domain_is_allowed(self):
        a = categorical("zip")
        assert a.values == ()

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Attribute("", AttributeKind.QUANTITATIVE)

    def test_duplicate_domain_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            categorical("m", ("Yes", "Yes"))

    def test_attribute_is_hashable_and_frozen(self):
        a = quantitative("age")
        assert hash(a) == hash(quantitative("age"))
        with pytest.raises(AttributeError):
            a.name = "other"


class TestTableSchema:
    def setup_method(self):
        self.schema = TableSchema(
            [
                quantitative("age"),
                categorical("married", ("Yes", "No")),
                quantitative("cars"),
            ]
        )

    def test_names_in_order(self):
        assert self.schema.names == ("age", "married", "cars")

    def test_len_and_iteration(self):
        assert len(self.schema) == 3
        assert [a.name for a in self.schema] == ["age", "married", "cars"]

    def test_index_of(self):
        assert self.schema.index_of("married") == 1

    def test_index_of_unknown_raises_with_hint(self):
        with pytest.raises(KeyError, match="no attribute named"):
            self.schema.index_of("height")

    def test_quantitative_indices(self):
        assert self.schema.quantitative_indices == (0, 2)

    def test_categorical_indices(self):
        assert self.schema.categorical_indices == (1,)

    def test_attribute_by_name_and_index(self):
        assert self.schema.attribute("cars").name == "cars"
        assert self.schema.attribute(0).name == "age"

    def test_getitem(self):
        assert self.schema[1].name == "married"

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TableSchema([quantitative("x"), categorical("x")])

    def test_equality(self):
        other = TableSchema(
            [
                quantitative("age"),
                categorical("married", ("Yes", "No")),
                quantitative("cars"),
            ]
        )
        assert self.schema == other

    def test_inequality_differs_by_kind(self):
        other = TableSchema(
            [
                categorical("age"),
                categorical("married", ("Yes", "No")),
                quantitative("cars"),
            ]
        )
        assert self.schema != other

    def test_repr_mentions_kinds(self):
        text = repr(self.schema)
        assert "age:Q" in text
        assert "married:C" in text

    def test_empty_schema(self):
        schema = TableSchema([])
        assert len(schema) == 0
        assert schema.quantitative_indices == ()

"""Tests for STR bulk loading (repro.rtree.bulk)."""

import random

import pytest

from repro.rtree import Rect, RStarTree
from repro.rtree.bulk import bulk_load


def random_rects(rng, n, ndim, extent=100.0, max_side=12.0):
    out = []
    for i in range(n):
        lo = tuple(rng.uniform(0, extent) for _ in range(ndim))
        hi = tuple(low + rng.uniform(0, max_side) for low in lo)
        out.append((Rect(lo, hi), i))
    return out


class TestBulkLoad:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    @pytest.mark.parametrize("n", [1, 5, 40, 300])
    def test_queries_match_linear_scan(self, ndim, n):
        rng = random.Random(ndim * 100 + n)
        pairs = random_rects(rng, n, ndim)
        tree = bulk_load(pairs, max_entries=8)
        assert tree.size == n
        for _ in range(60):
            p = tuple(rng.uniform(-5, 115) for _ in range(ndim))
            got = sorted(tree.containing_point(p))
            want = sorted(
                v for rect, v in pairs if rect.contains_point(p)
            )
            assert got == want

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            bulk_load([])

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(ValueError, match="dimensionality"):
            bulk_load([(Rect((0,), (1,)), 0), (Rect((0, 0), (1, 1)), 1)])

    def test_balanced_leaves(self):
        rng = random.Random(3)
        tree = bulk_load(random_rects(rng, 500, 2), max_entries=10)
        depths = set()

        def walk(node, depth):
            if node.leaf:
                depths.add(depth)
                return
            for child in node.children:
                walk(child, depth + 1)

        walk(tree._root, 0)
        assert len(depths) == 1
        assert depths.pop() == tree.height - 1

    def test_mbr_invariant_holds(self):
        rng = random.Random(5)
        tree = bulk_load(random_rects(rng, 400, 2), max_entries=6)

        def check(node):
            members = node.entries if node.leaf else node.children
            for m in members:
                assert node.rect.contains_rect(m.rect)
                if not node.leaf:
                    check(m)

        check(tree._root)

    def test_insert_after_bulk_load(self):
        rng = random.Random(7)
        pairs = random_rects(rng, 100, 2)
        tree = bulk_load(pairs, max_entries=8)
        extra = Rect((200.0, 200.0), (201.0, 201.0))
        tree.insert(extra, "extra")
        assert tree.size == 101
        assert tree.containing_point((200.5, 200.5)) == ["extra"]
        # Old entries still reachable.
        rect, value = pairs[0]
        assert value in tree.containing_point(rect.center())

    def test_same_results_as_incremental(self):
        rng = random.Random(11)
        pairs = random_rects(rng, 250, 2)
        bulk = bulk_load(pairs, max_entries=8)
        incremental = RStarTree(ndim=2, max_entries=8)
        for rect, value in pairs:
            incremental.insert(rect, value)
        for _ in range(80):
            p = (rng.uniform(0, 110), rng.uniform(0, 110))
            assert sorted(bulk.containing_point(p)) == sorted(
                incremental.containing_point(p)
            )

"""End-to-end observability: real runs produce correctly nested traces.

The structural contracts the instrumented pipeline promises:

- one traced run is one span tree — a ``run`` root, ``stage`` spans
  nested under it (inner passes under the composite search stage),
  ``shard_task`` spans under their stage — even when the fan-out runs
  on a process pool;
- concurrent async jobs sharing one tracer produce one ``job`` root
  per job with that job's run nested beneath, nothing cross-linked;
- a warm re-run's trace shows the cache hit;
- the trace-derived views agree with the legacy ``ExecutionStats``
  compatibility fields;
- observability never changes results or cache identity.
"""

import asyncio

import numpy as np

from repro.core import (
    MinerConfig,
    MiningJobRunner,
    ObsConfig,
    QuantitativeMiner,
)
from repro.engine import MemoryCache
from repro.obs import (
    Observability,
    cache_events,
    cache_hit_ratio,
    children_of,
    shard_seconds,
    spans_by_kind,
    stage_seconds,
)
from repro.table import RelationalTable, TableSchema, categorical, quantitative


def build_table(n=30):
    schema = TableSchema(
        [quantitative("x"), categorical("c", ("a", "b", "d"))]
    )
    return RelationalTable.from_columns(
        schema,
        [
            np.arange(n, dtype=float),
            np.arange(n, dtype=np.int64) % 3,
        ],
    )


def traced_config(**overrides):
    return MinerConfig(
        min_support=0.2,
        min_confidence=0.4,
        observability=ObsConfig(enabled=True),
        **overrides,
    )


def assert_single_tree(spans):
    """Every span's parent exists in the list; exactly one root."""
    ids = {span.span_id for span in spans}
    assert len(ids) == len(spans)
    roots = [span for span in spans if span.parent_id is None]
    assert len(roots) == 1
    for span in spans:
        if span.parent_id is not None:
            assert span.parent_id in ids
    return roots[0]


class TestSingleRunTrace:
    def test_run_stage_shard_nesting(self):
        result = QuantitativeMiner(build_table(), traced_config()).mine()
        spans = result.observability.tracer.spans()
        root = assert_single_tree(spans)
        assert root.kind == "run"
        assert root.name == "mine"
        assert root.attributes["records"] == 30

        stages = spans_by_kind(spans, "stage")
        by_name = {span.name: span for span in stages}
        # Top-level stages hang off the run; inner passes hang off the
        # composite search stage.
        for name in ("frequent_itemsets", "rule_generation", "interest"):
            assert by_name[name].parent_id == root.span_id, name
        search = by_name["frequent_itemsets"]
        assert by_name["frequent_items"].parent_id == search.span_id
        assert by_name["pass_2"].parent_id == search.span_id

        for shard in spans_by_kind(spans, "shard_task"):
            parent = next(
                span for span in spans if span.span_id == shard.parent_id
            )
            assert parent.kind == "stage"
            assert shard.attributes["stage"] in (
                "item_histograms", "count_pairs", "count_itemsets",
                "rule_generation", "interest",
            )

        # The run span closes last and covers the whole pipeline.
        assert root.duration >= max(
            span.duration for span in stages
        )

    def test_parallel_fanout_nests_under_stages(self):
        config = traced_config(
            execution={
                "executor": "parallel",
                "num_workers": 2,
                "shard_size": 8,
            },
        )
        result = QuantitativeMiner(build_table(64), config).mine()
        spans = result.observability.tracer.spans()
        assert_single_tree(spans)
        shards = spans_by_kind(spans, "shard_task")
        histogram_tasks = [
            span
            for span in shards
            if span.attributes["stage"] == "item_histograms"
        ]
        # 64 records at shard_size=8 fan out over 8 shard tasks, each
        # recorded on its own synthetic lane with its record count.
        assert len(histogram_tasks) == 8
        assert {span.thread for span in histogram_tasks} == {
            f"item_histograms/task-{i}" for i in range(8)
        }
        assert all(
            span.attributes["records"] == 8 for span in histogram_tasks
        )
        (stage_parent,) = {span.parent_id for span in histogram_tasks}
        parent = next(
            span for span in spans if span.span_id == stage_parent
        )
        assert parent.name == "frequent_items"

    def test_views_match_legacy_execution_stats(self):
        result = QuantitativeMiner(build_table(), traced_config()).mine()
        spans = result.observability.tracer.spans()
        execution = result.stats.execution

        derived = shard_seconds(spans)
        assert set(derived) == set(execution.stage_shard_seconds)
        for stage, seconds in execution.stage_shard_seconds.items():
            assert derived[stage] == seconds, stage

        assert cache_events(spans) == execution.stage_cache_events

        derived_stage = stage_seconds(spans)
        for stage, seconds in execution.stage_seconds.items():
            # The span additionally covers the stage's cache put/get,
            # so it can only be at least the legacy measurement.
            assert derived_stage[stage] >= seconds * 0.5, stage

    def test_metrics_cover_the_run(self):
        result = QuantitativeMiner(build_table(), traced_config()).mine()
        snapshot = result.observability.metrics.snapshot()
        execution = result.stats.execution
        counters = snapshot["counters"]
        assert counters["runs.completed"] == 1
        assert counters["cache.hit"] == execution.cache_hits
        assert counters["cache.miss"] == execution.cache_misses
        assert counters["stages.executed"] == len(
            execution.stage_seconds
        )
        assert snapshot["gauges"]["run.records"] == 30
        assert snapshot["gauges"]["run.rules"] == len(result.rules)
        assert (
            snapshot["histograms"]["run_seconds"]["count"] == 1
        )

    def test_disabled_config_records_nothing(self):
        result = QuantitativeMiner(
            build_table(), MinerConfig(min_support=0.2, min_confidence=0.4)
        ).mine()
        assert result.observability is None


class TestWarmRerun:
    def test_second_run_trace_shows_cache_hits(self):
        table = build_table()
        miner = QuantitativeMiner(table, traced_config())
        cold = miner.mine()
        # Both runs share the miner's tracer, so snapshot the cold
        # trace before re-mining and diff the warm spans out of it.
        cold_spans = cold.observability.tracer.spans()
        assert cache_events(cold_spans)["frequent_itemsets"] == "miss"
        warm = miner.mine()
        warm_spans = warm.observability.tracer.spans()[len(cold_spans):]
        events = cache_events(warm_spans)
        assert events["frequent_itemsets"] == "hit"
        assert events["rule_generation"] == "hit"
        assert cache_hit_ratio(warm_spans) == 1.0
        # A hit stage never fans out: its shard work was skipped.
        assert shard_seconds(warm_spans) == {}

    def test_observability_does_not_change_results_or_cache_identity(
        self,
    ):
        # The async-block exclusion test's twin: a traced run and an
        # untraced run must share cache entries (ObsConfig is excluded
        # from every stage fingerprint) and produce identical rules.
        table = build_table()
        cache = MemoryCache()
        plain = QuantitativeMiner(
            table,
            MinerConfig(min_support=0.2, min_confidence=0.4),
            cache=cache,
        ).mine()
        traced = QuantitativeMiner(
            table, traced_config(), cache=cache
        ).mine()
        assert cache.hits > 0
        assert traced.rules == plain.rules
        assert traced.support_counts == plain.support_counts
        assert list(traced.support_counts) == list(plain.support_counts)


class TestConcurrentJobs:
    def test_shared_tracer_one_forest_one_root_per_job(self):
        table = build_table()
        obs = Observability()

        async def sweep():
            async with MiningJobRunner(
                max_concurrent_jobs=3, observability=obs
            ) as runner:
                jobs = [
                    runner.submit(
                        table,
                        min_support=0.2,
                        min_confidence=confidence,
                    )
                    for confidence in (0.3, 0.5, 0.7)
                ]
                await runner.join()
                return jobs

        jobs = asyncio.run(sweep())
        assert all(job.status == "completed" for job in jobs)
        spans = obs.tracer.spans()

        job_spans = spans_by_kind(spans, "job")
        assert {span.name for span in job_spans} == {
            job.job_id for job in jobs
        }
        assert all(span.parent_id is None for span in job_spans)

        runs = spans_by_kind(spans, "run")
        assert len(runs) == 3
        assert {span.parent_id for span in runs} == {
            span.span_id for span in job_spans
        }
        # Every stage belongs to exactly one job's subtree.
        run_ids = {span.span_id for span in runs}
        for stage in spans_by_kind(spans, "stage"):
            if stage.parent_id not in run_ids:
                parent = next(
                    span
                    for span in spans
                    if span.span_id == stage.parent_id
                )
                assert parent.kind == "stage"

        counters = obs.metrics.snapshot()["counters"]
        assert counters["jobs.completed"] == 3
        assert counters["runs.completed"] == 3
        assert (
            obs.metrics.snapshot()["histograms"]["job_seconds"]["count"]
            == 3
        )

    def test_jobs_share_cache_and_later_jobs_hit(self):
        table = build_table()
        obs = Observability()

        async def sweep():
            async with MiningJobRunner(
                max_concurrent_jobs=1, observability=obs
            ) as runner:
                for confidence in (0.4, 0.6):
                    await runner.submit(
                        table,
                        min_support=0.2,
                        min_confidence=confidence,
                    ).wait()

        asyncio.run(sweep())
        spans = obs.tracer.spans()
        jobs = spans_by_kind(spans, "job")
        second_run = next(
            span
            for span in spans_by_kind(spans, "run")
            if span.parent_id == jobs[1].span_id
        )
        second_stages = children_of(spans, second_run)
        search = next(
            span
            for span in second_stages
            if span.name == "frequent_itemsets"
        )
        assert search.attributes["cache"] == "hit"


class TestExportedRunArtifacts:
    def test_miner_exports_configured_targets(self, tmp_path):
        from repro.obs import (
            read_spans_jsonl,
            validate_chrome_trace,
            validate_metrics_snapshot,
            validate_spans_jsonl,
        )
        import json

        trace_path = tmp_path / "run.jsonl"
        metrics_path = tmp_path / "metrics.json"
        config = MinerConfig(
            min_support=0.2,
            min_confidence=0.4,
            observability=ObsConfig(
                trace_path=str(trace_path),
                metrics_path=str(metrics_path),
            ),
        )
        result = QuantitativeMiner(build_table(), config).mine()

        assert validate_spans_jsonl(trace_path) == []
        reloaded = read_spans_jsonl(trace_path)
        assert reloaded == result.observability.tracer.spans()

        chrome_path = tmp_path / "run.chrome.json"
        assert chrome_path.exists()
        assert (
            validate_chrome_trace(json.loads(chrome_path.read_text()))
            == []
        )
        assert (
            validate_metrics_snapshot(
                json.loads(metrics_path.read_text())
            )
            == []
        )

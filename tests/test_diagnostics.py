"""Unit tests for repro.core.diagnostics."""

from dataclasses import replace

import pytest

from repro.core import MinerConfig, QuantitativeMiner
from repro.core.diagnostics import check_result
from repro.data import (
    age_partition_edges,
    generate_credit_table,
    people_table,
)


@pytest.fixture(scope="module")
def people_result():
    config = MinerConfig(
        min_support=0.4,
        min_confidence=0.5,
        max_support=0.6,
        interest_level=1.1,
        num_partitions={"Age": age_partition_edges()},
    )
    return QuantitativeMiner(people_table(), config).mine()


@pytest.fixture(scope="module")
def credit_result():
    config = MinerConfig(
        min_support=0.25,
        min_confidence=0.3,
        max_support=0.45,
        partial_completeness=3.0,
        max_quantitative_in_rule=2,
        interest_level=1.3,
    )
    return QuantitativeMiner(generate_credit_table(2_000, seed=5), config).mine()


class TestCleanResults:
    def test_people_result_passes(self, people_result):
        report = check_result(people_result, sample_limit=None)
        assert report.ok, report.render()
        assert report.checks_run > 50

    def test_credit_result_passes(self, credit_result):
        report = check_result(credit_result)
        assert report.ok, report.render()

    def test_render_ok(self, people_result):
        text = check_result(people_result).render()
        assert text.startswith("OK")


class TestCorruptedResults:
    def test_tampered_count_detected(self, people_result):
        corrupted = replace(
            people_result,
            support_counts=dict(people_result.support_counts),
        )
        key = next(iter(corrupted.support_counts))
        corrupted.support_counts[key] += 1
        report = check_result(corrupted, sample_limit=None)
        assert not report.ok
        assert any("recount" in v for v in report.violations)

    def test_missing_subset_detected(self, people_result):
        counts = dict(people_result.support_counts)
        # Remove a 1-itemset that longer itemsets depend on.
        singles = [s for s in counts if len(s) == 1]
        needed = next(
            s
            for s in singles
            if any(set(s) < set(longer) for longer in counts if len(longer) > 1)
        )
        del counts[needed]
        corrupted = replace(people_result, support_counts=counts)
        report = check_result(corrupted, sample_limit=None)
        assert not report.ok
        assert any("downward closure" in v for v in report.violations)

    def test_tampered_rule_detected(self, people_result):
        rule = people_result.rules[0]
        broken = replace(rule, confidence=min(1.0, rule.confidence / 2 + 0.01))
        corrupted = replace(
            people_result, rules=[broken] + people_result.rules[1:]
        )
        report = check_result(corrupted, sample_limit=None)
        assert not report.ok
        assert any("confidence inconsistent" in v for v in report.violations)

    def test_render_lists_violations(self, people_result):
        corrupted = replace(
            people_result,
            support_counts=dict(people_result.support_counts),
        )
        key = next(iter(corrupted.support_counts))
        corrupted.support_counts[key] += 1
        text = check_result(corrupted, sample_limit=None).render()
        assert "violation" in text

"""Cross-configuration integration tests on the credit table.

Beyond single-run invariants (covered by diagnostics), the thresholds
relate *runs* to each other: raising minimum support can only shrink the
frequent set, raising minimum confidence can only shrink the rule set,
raising maximum support can only grow the range inventory, and capping
the itemset size yields exactly the full run's prefix.  These tests pin
those relationships on realistic data.
"""

import pytest

from repro.core import MinerConfig, QuantitativeMiner
from repro.core.diagnostics import check_result
from repro.data import generate_credit_table

# Fixed partitioning so different thresholds share coordinates (Equation 2
# would otherwise change interval counts with minsup).
PARTITIONS = 10


@pytest.fixture(scope="module")
def table():
    return generate_credit_table(3_000, seed=21)


def mine(table, **overrides):
    params = dict(
        min_support=0.2,
        min_confidence=0.3,
        max_support=0.45,
        num_partitions=PARTITIONS,
        max_itemset_size=3,
    )
    params.update(overrides)
    return QuantitativeMiner(table, MinerConfig(**params)).mine()


class TestThresholdMonotonicity:
    def test_minsup_shrinks_frequent_set(self, table):
        loose = mine(table, min_support=0.15)
        tight = mine(table, min_support=0.3)
        assert set(tight.support_counts) < set(loose.support_counts)
        # Counts agree where both exist.
        for itemset, count in tight.support_counts.items():
            assert loose.support_counts[itemset] == count

    def test_minconf_shrinks_rule_set(self, table):
        loose = mine(table, min_confidence=0.2)
        tight = mine(table, min_confidence=0.6)
        assert set(tight.rules) < set(loose.rules)

    def test_maxsup_grows_item_inventory(self, table):
        narrow = mine(table, max_support=0.3, max_itemset_size=1)
        wide = mine(table, max_support=0.6, max_itemset_size=1)
        assert set(narrow.support_counts) <= set(wide.support_counts)

    def test_size_cap_is_a_prefix_of_the_full_run(self, table):
        capped = mine(table, max_itemset_size=2)
        full = mine(table, max_itemset_size=None)
        expected = {
            itemset: count
            for itemset, count in full.support_counts.items()
            if len(itemset) <= 2
        }
        assert capped.support_counts == expected


class TestParameterGrid:
    @pytest.mark.parametrize("min_support", [0.15, 0.3])
    @pytest.mark.parametrize("interest", [None, 1.3])
    @pytest.mark.parametrize(
        "method", ["equidepth", "equicardinality"]
    )
    def test_grid_runs_clean(self, table, min_support, interest, method):
        result = mine(
            table,
            min_support=min_support,
            interest_level=interest,
            partition_method=method,
        )
        report = check_result(result)
        assert report.ok, report.render()
        if interest is None:
            assert result.interesting_rules == result.rules

    def test_and_mode_stricter_than_or_mode(self, table):
        or_run = mine(
            table, interest_level=1.3,
            interest_mode="support_or_confidence",
        )
        and_run = mine(
            table, interest_level=1.3,
            interest_mode="support_and_confidence",
        )
        # AND-mode prunes items up front, so its rule inventory is a
        # subset; its interesting set can only lose candidates that OR
        # would have kept via confidence.
        assert set(and_run.rules) <= set(or_run.rules)

"""Unit tests for repro.core.export and the MiningResult export hooks."""

import json

import pytest

from repro.core import Item, MinerConfig, QuantitativeMiner, make_itemset
from repro.core.export import (
    itemsets_to_json,
    load_rules_json,
    rule_from_dict,
    rule_to_dict,
    rules_from_json,
    rules_to_json,
    save_rules_csv,
    save_rules_json,
)
from repro.core.rules import QuantitativeRule
from repro.data import age_partition_edges, people_table


@pytest.fixture(scope="module")
def result():
    config = MinerConfig(
        min_support=0.4,
        min_confidence=0.5,
        max_support=0.6,
        interest_level=1.1,
        num_partitions={"Age": age_partition_edges()},
    )
    return QuantitativeMiner(people_table(), config).mine()


def sample_rule():
    return QuantitativeRule(
        antecedent=make_itemset([Item(0, 2, 3), Item(1, 0, 0)]),
        consequent=make_itemset([Item(2, 2, 2)]),
        support=0.4,
        confidence=1.0,
    )


class TestRuleDicts:
    def test_round_trip(self):
        rule = sample_rule()
        assert rule_from_dict(rule_to_dict(rule)) == rule

    def test_display_added_with_mapper(self, result):
        data = rule_to_dict(result.rules[0], result.mapper)
        assert "display" in data["antecedent"][0]
        assert "attribute_name" in data["antecedent"][0]

    def test_no_display_without_mapper(self):
        data = rule_to_dict(sample_rule())
        assert "display" not in data["antecedent"][0]


class TestJsonDocuments:
    def test_round_trip_preserves_rules(self, result):
        text = rules_to_json(result.rules, result.mapper, {"k": 1})
        rules, metadata = rules_from_json(text)
        assert rules == result.rules
        assert metadata == {"k": 1}

    def test_document_structure(self, result):
        doc = json.loads(rules_to_json(result.rules[:2]))
        assert doc["format"] == "repro.quantitative_rules"
        assert doc["version"] == 1
        assert len(doc["rules"]) == 2

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro"):
            rules_from_json('{"format": "something-else"}')

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            rules_from_json(
                '{"format": "repro.quantitative_rules", "version": 99}'
            )

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "rules.json"
        save_rules_json(result.rules, path, result.mapper, {"note": "x"})
        rules, metadata = load_rules_json(path)
        assert rules == result.rules
        assert metadata["note"] == "x"

    def test_itemsets_document(self, result):
        doc = json.loads(
            itemsets_to_json(
                result.support_counts, result.num_records, result.mapper
            )
        )
        assert doc["num_records"] == 5
        assert doc["itemsets"]
        first = doc["itemsets"][0]
        assert first["count"] >= 2
        assert 0 < first["support"] <= 1


class TestCsv:
    def test_rows_and_rendering(self, result, tmp_path):
        path = tmp_path / "rules.csv"
        save_rules_csv(result.rules, path, result.mapper)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "antecedent,consequent,support,confidence"
        assert len(lines) == len(result.rules) + 1
        assert "<Married: Yes>" in path.read_text()

    def test_without_mapper_uses_indices(self, tmp_path):
        path = tmp_path / "rules.csv"
        save_rules_csv([sample_rule()], path)
        assert "<0: 2..3>" in path.read_text()


class TestMiningResultHooks:
    def test_save_rules_json_with_metadata(self, result, tmp_path):
        path = tmp_path / "out.json"
        result.save_rules_json(path)
        rules, metadata = load_rules_json(path)
        assert rules == result.interesting_rules
        assert metadata["min_support"] == pytest.approx(0.4)
        assert metadata["num_records"] == 5

    def test_save_rules_csv_default_interesting(self, result, tmp_path):
        path = tmp_path / "out.csv"
        result.save_rules_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(result.interesting_rules) + 1


class TestResultDocuments:
    """result_to_document / result_from_document round trips."""

    def test_round_trip_rules_and_interest(self, result):
        from repro.core.export import (
            result_from_document,
            result_to_document,
        )

        document = result_to_document(result, metadata={"job": "j1"})
        assert document["format"] == "repro.mining_result"
        assert document["num_records"] == result.num_records
        assert document["metadata"] == {"job": "j1"}
        # Every rule carries its interest annotation, and the flags
        # reconstruct the interesting subset exactly.
        flags = [r["interesting"] for r in document["rules"]]
        assert sum(flags) == len(result.interesting_rules)

        decoded = result_from_document(document)
        assert decoded.rules == result.rules
        assert decoded.interesting_rules == result.interesting_rules
        assert decoded.stats == result.stats
        assert decoded.config == result.config
        assert decoded.metadata == {"job": "j1"}

    def test_json_and_file_round_trip(self, result, tmp_path):
        import json as json_module

        from repro.core.export import (
            load_result_json,
            result_from_document,
            result_to_document,
            save_result_json,
        )

        document = result_to_document(result)
        # The document must be pure JSON (no lossy conversions).
        rehydrated = json_module.loads(json_module.dumps(document))
        assert result_from_document(rehydrated).rules == result.rules

        path = tmp_path / "result.json"
        save_result_json(result, path)
        decoded = load_result_json(path)
        assert decoded.rules == result.rules
        assert decoded.interesting_rules == result.interesting_rules

    def test_wrong_format_rejected(self, result):
        from repro.core.export import (
            result_from_document,
            result_to_document,
        )

        document = result_to_document(result)
        document["format"] = "something.else"
        with pytest.raises(ValueError, match="format"):
            result_from_document(document)

    def test_write_json_atomic_replaces(self, tmp_path):
        from repro.core.export import write_json_atomic

        path = tmp_path / "doc.json"
        write_json_atomic({"v": 1}, path)
        write_json_atomic({"v": 2}, path)
        assert json.loads(path.read_text()) == {"v": 2}
        assert list(tmp_path.iterdir()) == [path]  # no tmp litter


class TestAttributeDocuments:
    """attributes_to_document / mappings_from_document round trips.

    The attributes section is what lets the rule-serving layer rebuild
    record encoding from a document alone, so the rebuilt mappings must
    encode and render exactly like the originals.
    """

    def test_mappings_round_trip_exactly(self, result):
        from repro.core.export import (
            attributes_to_document,
            mappings_from_document,
        )

        attributes = json.loads(
            json.dumps(attributes_to_document(result.mapper))
        )
        rebuilt = mappings_from_document(attributes)
        originals = result.mapper.mappings
        assert len(rebuilt) == len(originals)
        for new, old in zip(rebuilt, originals):
            assert new.name == old.name
            assert new.kind == old.kind
            assert new.cardinality == old.cardinality
            assert new.labels == old.labels
            assert new.partitioning == old.partitioning
            for code in range(old.cardinality):
                assert new.describe_value(code) == old.describe_value(code)

    def test_rebuilt_partitioning_assigns_identically(self, result):
        from repro.core.export import (
            attributes_to_document,
            mappings_from_document,
        )

        rebuilt = mappings_from_document(
            attributes_to_document(result.mapper)
        )
        for new, old in zip(rebuilt, result.mapper.mappings):
            if old.partitioning is None or not old.partitioning.partitioned:
                continue
            probes = list(old.partitioning.edges) + [-1e9, 1e9, 0.5]
            assert list(new.partitioning.assign(probes)) == list(
                old.partitioning.assign(probes)
            )

    def test_result_document_carries_attributes_and_lift(self, result):
        from repro.core.export import result_to_document

        document = result_to_document(result)
        names = [a["name"] for a in document["attributes"]]
        assert names == [m.name for m in result.mapper.mappings]
        n = result.num_records
        for data, rule in zip(document["rules"], result.rules):
            consequent_support = (
                result.support_counts.get(rule.consequent, 0) / n
                if len(rule.consequent) > 1
                else result.frequent_items.support(rule.consequent[0])
            )
            assert data["lift"] == pytest.approx(
                rule.confidence / consequent_support
            )

    def test_rules_json_embeds_attributes_only_with_mapper(self, result):
        with_mapper = json.loads(
            rules_to_json(result.rules, result.mapper)
        )
        assert "attributes" in with_mapper
        without = json.loads(rules_to_json(result.rules))
        assert "attributes" not in without

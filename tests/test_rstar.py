"""Unit tests for the R*-tree [BKSS90] (repro.rtree.rstar)."""

import random

import pytest

from repro.rtree import Rect, RStarTree


def random_rects(rng, n, ndim, extent=100.0, max_side=15.0):
    out = []
    for _ in range(n):
        lo = tuple(rng.uniform(0, extent) for _ in range(ndim))
        hi = tuple(low + rng.uniform(0, max_side) for low in lo)
        out.append(Rect(lo, hi))
    return out


class TestConstruction:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            RStarTree(ndim=0)
        with pytest.raises(ValueError):
            RStarTree(ndim=1, max_entries=3)
        with pytest.raises(ValueError):
            RStarTree(ndim=1, min_fill=0.6)
        with pytest.raises(ValueError):
            RStarTree(ndim=1, reinsert_fraction=1.5)

    def test_dimension_mismatch_rejected(self):
        tree = RStarTree(ndim=2)
        with pytest.raises(ValueError, match="dimensions"):
            tree.insert(Rect((0,), (1,)), "x")
        with pytest.raises(ValueError, match="dimensions"):
            tree.containing_point((0,))

    def test_size_and_height_grow(self):
        tree = RStarTree(ndim=1, max_entries=4)
        for i in range(40):
            tree.insert(Rect((i,), (i + 1,)), i)
        assert tree.size == 40
        assert tree.height >= 2
        assert len(tree) == 40


class TestPointQueries:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_matches_linear_scan(self, ndim):
        rng = random.Random(ndim)
        rects = random_rects(rng, 300, ndim)
        tree = RStarTree(ndim=ndim, max_entries=8)
        for i, r in enumerate(rects):
            tree.insert(r, i)
        for _ in range(100):
            p = tuple(rng.uniform(-5, 110) for _ in range(ndim))
            got = sorted(tree.containing_point(p))
            want = sorted(
                i for i, r in enumerate(rects) if r.contains_point(p)
            )
            assert got == want

    def test_empty_tree(self):
        tree = RStarTree(ndim=2)
        assert tree.containing_point((1, 1)) == []

    def test_boundary_inclusive(self):
        tree = RStarTree(ndim=1)
        tree.insert(Rect((0,), (10,)), "r")
        assert tree.containing_point((0,)) == ["r"]
        assert tree.containing_point((10,)) == ["r"]
        assert tree.containing_point((10.001,)) == []

    def test_duplicate_rects_both_returned(self):
        tree = RStarTree(ndim=1)
        tree.insert(Rect((0,), (1,)), "a")
        tree.insert(Rect((0,), (1,)), "b")
        assert sorted(tree.containing_point((0.5,))) == ["a", "b"]

    def test_degenerate_point_rects(self):
        tree = RStarTree(ndim=2, max_entries=4)
        for i in range(30):
            tree.insert(Rect.point((i, i)), i)
        assert tree.containing_point((7, 7)) == [7]
        assert tree.containing_point((7, 8)) == []


class TestRectQueries:
    def test_intersecting_matches_linear_scan(self):
        rng = random.Random(5)
        rects = random_rects(rng, 200, 2)
        tree = RStarTree(ndim=2, max_entries=6)
        for i, r in enumerate(rects):
            tree.insert(r, i)
        for _ in range(50):
            probe = random_rects(rng, 1, 2, max_side=30.0)[0]
            got = sorted(tree.intersecting(probe))
            want = sorted(
                i for i, r in enumerate(rects) if r.intersects(probe)
            )
            assert got == want


class TestStructure:
    def test_all_entries_preserved(self):
        rng = random.Random(9)
        rects = random_rects(rng, 150, 2)
        tree = RStarTree(ndim=2, max_entries=5)
        for i, r in enumerate(rects):
            tree.insert(r, i)
        entries = tree.all_entries()
        assert len(entries) == 150
        assert sorted(v for _, v in entries) == list(range(150))
        for rect, value in entries:
            assert rect == rects[value]

    def test_node_mbrs_contain_children(self):
        # Walk the tree and assert the R-tree invariant at every level.
        rng = random.Random(13)
        tree = RStarTree(ndim=2, max_entries=5)
        for i, r in enumerate(random_rects(rng, 200, 2)):
            tree.insert(r, i)

        def check(node):
            members = node.entries if node.leaf else node.children
            for m in members:
                assert node.rect.contains_rect(m.rect)
                if not node.leaf:
                    check(m)

        check(tree._root)

    def test_leaves_at_same_depth(self):
        rng = random.Random(17)
        tree = RStarTree(ndim=1, max_entries=4)
        for i, r in enumerate(random_rects(rng, 120, 1)):
            tree.insert(r, i)
        depths = set()

        def walk(node, depth):
            if node.leaf:
                depths.add(depth)
                return
            for child in node.children:
                walk(child, depth + 1)

        walk(tree._root, 0)
        assert len(depths) == 1
        assert depths.pop() == tree.height - 1

    def test_estimated_memory_positive_and_monotone(self):
        tree = RStarTree(ndim=2)
        small = tree.estimated_memory()
        for i in range(50):
            tree.insert(Rect.point((i, i)), i)
        assert tree.estimated_memory() > small

    def test_repr(self):
        assert "RStarTree" in repr(RStarTree(ndim=2))

"""Property-based tests for the core: item algebra, partitioning, mining
invariants and the partial-completeness guarantee (Lemma 3)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Item,
    MinerConfig,
    QuantitativeMiner,
    completeness_from_partitioning,
    equi_depth,
    equi_width,
    is_generalization,
    is_k_complete,
    subtract_specialization,
)
from repro.table import RelationalTable, TableSchema, categorical, quantitative

# ----------------------------------------------------------------------
# Item algebra
# ----------------------------------------------------------------------
ranges = st.tuples(
    st.integers(0, 20), st.integers(0, 20)
).map(lambda t: (min(t), max(t)))


def itemset_over(attrs):
    return st.tuples(*(ranges for _ in attrs)).map(
        lambda rs: tuple(
            Item(a, lo, hi) for a, (lo, hi) in zip(attrs, rs)
        )
    )


class TestGeneralizationOrder:
    @given(itemset_over((0, 1)), itemset_over((0, 1)), itemset_over((0, 1)))
    @settings(max_examples=200, deadline=None)
    def test_partial_order(self, a, b, c):
        # Reflexive.
        assert is_generalization(a, a)
        # Antisymmetric.
        if is_generalization(a, b) and is_generalization(b, a):
            assert a == b
        # Transitive.
        if is_generalization(a, b) and is_generalization(b, c):
            assert is_generalization(a, c)

    @given(itemset_over((0, 1)), itemset_over((0, 1)))
    @settings(max_examples=200, deadline=None)
    def test_subtraction_partitions_the_region(self, x, spec):
        """When X - X' is expressible, X' and the difference tile X."""
        diff = subtract_specialization(x, spec)
        if diff is None:
            return
        # Spot-check on every point of the (small) grid: a point is in X
        # iff it is in exactly one of X' and X - X'.
        def contains(itemset, point):
            return all(
                it.lo <= p <= it.hi for it, p in zip(itemset, point)
            )

        for p0 in range(0, 21):
            for p1 in range(0, 21):
                point = (p0, p1)
                in_x = contains(x, point)
                in_spec = contains(spec, point)
                in_diff = contains(diff, point)
                assert in_x == (in_spec or in_diff)
                assert not (in_spec and in_diff)


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
columns = st.lists(
    st.floats(-1000, 1000, allow_nan=False, allow_infinity=False),
    min_size=5,
    max_size=300,
).map(np.array)


class TestPartitioningProperties:
    @given(columns, st.integers(1, 12))
    @settings(max_examples=80, deadline=None)
    def test_assign_codes_in_range(self, column, num_intervals):
        for method in (equi_depth, equi_width):
            part = method(column, num_intervals)
            codes = part.assign(column)
            assert codes.min() >= 0
            assert codes.max() < part.num_intervals

    @given(columns, st.integers(2, 12))
    @settings(max_examples=80, deadline=None)
    def test_assignment_preserves_order(self, column, num_intervals):
        for method in (equi_depth, equi_width):
            part = method(column, num_intervals)
            order = np.argsort(column, kind="stable")
            codes = part.assign(column)[order]
            assert (np.diff(codes) >= 0).all()

    @given(columns, st.integers(2, 10))
    @settings(max_examples=80, deadline=None)
    def test_equi_depth_beats_equi_width_on_lemma4_objective(
        self, column, num_intervals
    ):
        """Lemma 4: equi-depth minimizes the max multi-value interval
        support, hence the partial completeness level."""
        depth = equi_depth(column, num_intervals)
        width = equi_width(column, num_intervals)
        if not (depth.partitioned and width.partitioned):
            return
        # Compare at equal realized interval counts only — ties can
        # collapse equi-depth intervals, which trades completeness for
        # fewer intervals.
        if depth.num_intervals != width.num_intervals:
            return
        s_depth = depth.max_multi_value_support(column)
        s_width = width.max_multi_value_support(column)
        # Lemma 4 assumes boundaries can fall anywhere; a run of tied
        # records cannot be split, so each quantile boundary may be
        # displaced by up to the largest tie run (an interval has two
        # boundaries).  With distinct values this degenerates to the
        # one-record slack; comparison is in whole record counts so
        # exact-equality cases don't fail on float rounding.
        n = max(1, len(column))
        largest_tie = int(np.unique(column, return_counts=True)[1].max())
        slack = max(1, 2 * (largest_tie - 1) + 1)
        assert round(s_depth * n) <= round(s_width * n) + slack


# ----------------------------------------------------------------------
# Mining invariants on random tables
# ----------------------------------------------------------------------
def random_table(draw_ints, n):
    x = np.array(draw_ints[:n], dtype=float)
    y = np.array(draw_ints[n:2 * n], dtype=float)
    c = (np.array(draw_ints[2 * n:3 * n]) % 2).astype(np.int64)
    schema = TableSchema(
        [quantitative("x"), quantitative("y"), categorical("c", ("u", "v"))]
    )
    return RelationalTable.from_columns(schema, [x, y, c])


table_ints = st.lists(
    st.integers(0, 9), min_size=90, max_size=90
)


class TestMiningInvariants:
    @given(table_ints, st.floats(0.15, 0.5))
    @settings(max_examples=25, deadline=None)
    def test_supports_exact_and_antimonotone(self, draws, minsup):
        table = random_table(draws, 30)
        config = MinerConfig(
            min_support=minsup,
            min_confidence=0.3,
            max_support=0.7,
            partial_completeness=3.0,
        )
        result = QuantitativeMiner(table, config).mine()
        mapper = result.mapper
        n = table.num_records
        for itemset, count in result.support_counts.items():
            mask = np.ones(n, dtype=bool)
            for item in itemset:
                col = mapper.column(item.attribute)
                mask &= (col >= item.lo) & (col <= item.hi)
            assert count == int(mask.sum())
        # Anti-monotonicity under generalization within the result.
        frequent = list(result.support_counts.items())
        for a, count_a in frequent[:60]:
            for b, count_b in frequent[:60]:
                if is_generalization(a, b):
                    assert count_a >= count_b

    @given(table_ints, st.floats(0.2, 0.5))
    @settings(max_examples=25, deadline=None)
    def test_rule_measures_consistent(self, draws, minsup):
        table = random_table(draws, 30)
        config = MinerConfig(
            min_support=minsup,
            min_confidence=0.4,
            max_support=0.7,
            partial_completeness=3.0,
        )
        result = QuantitativeMiner(table, config).mine()
        for rule in result.rules:
            assert rule.support >= minsup - 1e-9
            assert rule.confidence >= 0.4 - 1e-9
            assert rule.confidence <= 1.0 + 1e-9
            joint = result.support(rule.itemset)
            base = result.support(rule.antecedent)
            assert abs(rule.confidence - joint / base) < 1e-9


class TestLemma3Empirically:
    """Partition, mine, and verify the K-completeness guarantee."""

    @given(
        st.lists(st.integers(0, 999), min_size=80, max_size=200),
        st.integers(4, 10),
    )
    @settings(max_examples=15, deadline=None)
    def test_partitioned_itemsets_are_k_complete(self, values, intervals):
        column = np.array(values, dtype=float)
        n = len(column)
        schema = TableSchema([quantitative("x")])
        table = RelationalTable.from_columns(schema, [column])
        minsup = 0.2

        # Reference: all ranges over raw values (no partitioning).
        reference = MinerConfig(
            min_support=minsup,
            max_support=1.0,
            num_partitions={"x": 10**6},
        )
        full = QuantitativeMiner(table, reference).mine()
        full_set = {
            itemset: count / n
            for itemset, count in full.support_counts.items()
        }

        # Partitioned run over the same data.
        partitioned_config = MinerConfig(
            min_support=minsup,
            max_support=1.0,
            num_partitions={"x": intervals},
        )
        miner = QuantitativeMiner(table, partitioned_config)
        part_result = miner.mine()

        # Lift partitioned itemsets back into raw-value space so both
        # sides speak the same coordinates.
        part = miner.mapper.mapping("x").partitioning
        if not part.partitioned:
            return  # too few distinct values; nothing to verify
        raw_values = sorted(set(values))
        rank = {v: i for i, v in enumerate(raw_values)}

        def to_value_space(itemset, count):
            (item,) = itemset
            lo_raw = part.interval_bounds(item.lo)[0]
            hi_raw = part.interval_bounds(item.hi)[1]
            members = [v for v in raw_values if lo_raw <= v <= hi_raw]
            if not members:
                return None
            return (
                (Item(0, rank[members[0]], rank[members[-1]]),),
                count / n,
            )

        candidate_set = {}
        for itemset, count in part_result.support_counts.items():
            translated = to_value_space(itemset, count)
            if translated is not None:
                candidate_set[translated[0]] = translated[1]
        # Only keep translations that exist in the reference set (support
        # values must agree; they do because the region is identical).
        candidate_set = {
            k: v for k, v in candidate_set.items() if k in full_set
        }

        k_level = completeness_from_partitioning(
            part.max_multi_value_support(column), minsup, 1
        )
        assert is_k_complete(candidate_set, full_set, k_level)


class TestLemma1Empirically:
    """Rules from a K-complete partitioned run, generated at minconf/K,
    contain a close counterpart for every raw-granularity rule: support
    within K x and confidence within [1/K, K] x (Lemma 1)."""

    @given(
        st.lists(st.integers(0, 49), min_size=80, max_size=160),
        st.lists(st.integers(0, 1), min_size=80, max_size=160),
        st.integers(4, 9),
    )
    @settings(max_examples=10, deadline=None)
    def test_close_rule_exists(self, xs, ys, intervals):
        n = min(len(xs), len(ys))
        schema = TableSchema(
            [quantitative("x"), categorical("c", ("u", "v"))]
        )
        table = RelationalTable.from_columns(
            schema,
            [
                np.array(xs[:n], dtype=float),
                np.array(ys[:n], dtype=np.int64),
            ],
        )
        minsup, minconf = 0.2, 0.5

        raw = QuantitativeMiner(
            table,
            MinerConfig(
                min_support=minsup,
                min_confidence=minconf,
                max_support=1.0,
                num_partitions={"x": 10**6},
            ),
        ).mine()

        part_config = MinerConfig(
            min_support=minsup,
            min_confidence=minconf,
            max_support=1.0,
            num_partitions={"x": intervals},
            lemma1_confidence_adjustment=False,
        )
        miner = QuantitativeMiner(table, part_config)
        part = miner.mapper.mapping("x").partitioning
        if not part.partitioned:
            return
        k = miner.realized_completeness(minsup)
        # Lemma 1: generate partitioned rules at minconf / K (the
        # realized K from Equation 1, which is what the guarantee needs).
        part_result = miner.mine(
            MinerConfig(
                min_support=minsup,
                min_confidence=minconf / k,
                max_support=1.0,
                num_partitions={"x": intervals},
            )
        )

        raw_values = sorted(set(xs[:n]))

        def raw_bounds(item):
            # Raw-value lo/hi covered by a partitioned x item.
            lo = part.interval_bounds(item.lo)[0]
            hi = part.interval_bounds(item.hi)[1]
            members = [v for v in raw_values if lo <= v <= hi]
            return (members[0], members[-1]) if members else None

        for rule in raw.rules:
            # Only x => c rules are comparable across runs.
            if len(rule.antecedent) != 1 or rule.antecedent[0].attribute != 0:
                continue
            if rule.consequent[0].attribute != 1:
                continue
            ant = rule.antecedent[0]
            ant_lo, ant_hi = raw_values[ant.lo], raw_values[ant.hi]
            found = False
            for candidate in part_result.rules:
                if len(candidate.antecedent) != 1:
                    continue
                c_ant = candidate.antecedent[0]
                if c_ant.attribute != 0:
                    continue
                if candidate.consequent != rule.consequent:
                    continue
                bounds = raw_bounds(c_ant)
                if bounds is None:
                    continue
                if not (bounds[0] <= ant_lo and ant_hi <= bounds[1]):
                    continue  # not a generalization
                if candidate.support > k * rule.support + 1e-9:
                    continue
                ratio = candidate.confidence / rule.confidence
                if 1.0 / k - 1e-9 <= ratio <= k + 1e-9:
                    found = True
                    break
            assert found, (
                f"no close rule for {rule} at K={k:.2f} "
                f"({intervals} intervals)"
            )

"""Unit tests for repro.serve.store and repro.serve.tables.

The durability contract under test: every transition journaled before
the caller proceeds, replay reconstructs exactly the acknowledged
state (tolerating a torn final line from a killed process), and result
documents land atomically.
"""

import json

import pytest

from repro.serve import (
    DiskJobStore,
    JobRecord,
    MemoryJobStore,
    TableRegistry,
    UnknownTableError,
    inline_table_name,
    mark_interrupted,
    validate_job_id,
    validate_table_name,
)

CSV = "age,income,married\n23,1200,no\n34,2000,yes\n45,1500,yes\n"


def make_record(job_id="j1", **overrides):
    fields = dict(
        job_id=job_id,
        table_ref="people",
        config={"min_support": 0.2},
        submitted_at=123.0,
    )
    fields.update(overrides)
    return JobRecord(**fields)


class TestJobRecord:
    def test_round_trip(self):
        record = make_record(
            status="completed",
            started_at=124.0,
            finished_at=130.0,
            timeout=60.0,
            stats={"num_rules": 5},
            recovered=2,
        )
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_unknown_keys_tolerated(self):
        data = make_record().to_dict()
        data["from_the_future"] = True
        assert JobRecord.from_dict(data).job_id == "j1"

    def test_bad_status_rejected(self):
        with pytest.raises(ValueError, match="unknown job status"):
            make_record(status="exploded")

    def test_done_only_in_terminal_states(self):
        assert not make_record(status="queued").done
        assert not make_record(status="interrupted").done
        assert make_record(status="completed").done
        assert make_record(status="timed_out").done


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryJobStore()
    return DiskJobStore(tmp_path / "store")


class TestJobStoreContract:
    def test_create_get_list(self, store):
        store.create(make_record("a"))
        store.create(make_record("b"))
        assert store.get("a").job_id == "a"
        assert [r.job_id for r in store.list_records()] == ["a", "b"]
        assert store.get("missing") is None

    def test_duplicate_id_rejected(self, store):
        store.create(make_record("a"))
        with pytest.raises(ValueError, match="duplicate"):
            store.create(make_record("a"))

    def test_update_transitions(self, store):
        store.create(make_record("a"))
        store.update("a", status="running", started_at=124.0)
        record = store.get("a")
        assert record.status == "running"
        assert record.started_at == 124.0

    def test_update_rejects_bad_status(self, store):
        store.create(make_record("a"))
        with pytest.raises(ValueError, match="unknown job status"):
            store.update("a", status="nope")

    def test_recoverable_filters_terminal(self, store):
        store.create(make_record("q"))
        store.create(make_record("r", status="running"))
        store.create(make_record("i", status="interrupted"))
        store.create(make_record("c", status="completed"))
        store.create(make_record("f", status="failed"))
        assert [r.job_id for r in store.recoverable()] == ["q", "r", "i"]

    def test_results_round_trip(self, store):
        store.create(make_record("a"))
        assert store.load_result("a") is None
        store.save_result("a", {"rules": [1, 2, 3]})
        assert store.load_result("a") == {"rules": [1, 2, 3]}

    def test_mark_interrupted(self, store):
        store.create(make_record("q"))
        store.create(make_record("r", status="running"))
        store.create(make_record("c", status="completed"))
        stamped = mark_interrupted(store, "server died")
        assert sorted(r.job_id for r in stamped) == ["q", "r"]
        assert store.get("q").status == "interrupted"
        assert store.get("q").cancel_reason == "server died"
        assert store.get("c").status == "completed"


class TestDiskJournal:
    def test_replay_reconstructs_state(self, tmp_path):
        path = tmp_path / "store"
        store = DiskJobStore(path)
        store.create(make_record("a"))
        store.update("a", status="running", started_at=5.0)
        store.create(make_record("b", timeout=9.0))
        store.save_result("a", {"rules": []})
        store.update("a", status="completed", finished_at=6.0)
        store.close()

        reopened = DiskJobStore(path)
        a, b = reopened.get("a"), reopened.get("b")
        assert a.status == "completed"
        assert a.started_at == 5.0 and a.finished_at == 6.0
        assert b.status == "queued" and b.timeout == 9.0
        assert reopened.load_result("a") == {"rules": []}

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "store"
        store = DiskJobStore(path)
        store.create(make_record("a"))
        store.update("a", status="running")
        store.close()
        journal = path / "jobs.jsonl"
        # Simulate a process killed mid-append: a partial JSON line.
        with journal.open("a") as f:
            f.write('{"op": "update", "job_id": "a", "fie')
        reopened = DiskJobStore(path)
        assert reopened.get("a").status == "running"

    def test_updates_for_unknown_jobs_skipped(self, tmp_path):
        path = tmp_path / "store"
        path.mkdir()
        (path / "jobs.jsonl").write_text(
            json.dumps(
                {"op": "update", "job_id": "ghost", "fields": {}}
            )
            + "\n"
        )
        assert DiskJobStore(path).list_records() == []

    def test_result_written_atomically(self, tmp_path):
        store = DiskJobStore(tmp_path / "store")
        store.create(make_record("a"))
        store.save_result("a", {"x": 1})
        results = list((tmp_path / "store" / "results").iterdir())
        assert [p.name for p in results] == ["a.json"]

    @pytest.mark.parametrize(
        "evil",
        ["../../../../tmp/evil", "..", "a/b", "/abs/path", "..\\win"],
    )
    def test_result_paths_reject_traversal_ids(self, tmp_path, evil):
        # A job id becomes results/<id>.json; separators must never
        # reach the filesystem layer.
        store = DiskJobStore(tmp_path / "store")
        with pytest.raises(ValueError, match="job id"):
            store.save_result(evil, {"x": 1})
        with pytest.raises(ValueError, match="job id"):
            store.load_result(evil)
        assert list((tmp_path / "store" / "results").iterdir()) == []


class TestJobIds:
    def test_valid_ids(self):
        assert validate_job_id("job-abc123") == "job-abc123"
        assert validate_job_id("a.b-c_d9") == "a.b-c_d9"

    @pytest.mark.parametrize(
        "bad",
        ["", ".hidden", "-dash", "a/b", "../up", "x" * 101, None, 7],
    )
    def test_invalid_ids(self, bad):
        with pytest.raises(ValueError):
            validate_job_id(bad)


class TestTableNames:
    def test_valid_names(self):
        assert validate_table_name("people") == "people"
        assert validate_table_name("a.b-c_d9") == "a.b-c_d9"

    @pytest.mark.parametrize(
        "bad", ["", ".hidden", "-dash", "has space", "a/b", "x" * 101]
    )
    def test_invalid_names(self, bad):
        with pytest.raises(ValueError):
            validate_table_name(bad)

    def test_inline_name_is_content_addressed(self):
        a = inline_table_name(CSV, ["age"], [])
        assert a == inline_table_name(CSV, ["age"], [])
        assert a != inline_table_name(CSV, [], ["age"])
        assert a != inline_table_name(CSV + "x", ["age"], [])
        assert a.startswith("inline-")


class TestTableRegistry:
    def test_put_and_get(self):
        registry = TableRegistry()
        registry.put_csv("people", CSV, categorical=["married"])
        table = registry.get("people")
        assert table.num_records == 3
        assert registry.get("people") is table  # cached instance
        assert "people" in registry
        assert registry.names() == ["people"]

    def test_unknown_table_raises(self):
        with pytest.raises(UnknownTableError):
            TableRegistry().get("ghost")

    def test_describe(self):
        registry = TableRegistry()
        registry.put_csv("people", CSV, categorical=["married"])
        description = registry.describe("people")
        assert description["num_records"] == 3
        kinds = {
            a["name"]: a["kind"] for a in description["attributes"]
        }
        assert kinds["married"] == "categorical"
        assert kinds["age"] == "quantitative"

    def test_malformed_csv_fails_eagerly(self):
        registry = TableRegistry()
        with pytest.raises(Exception):
            registry.put_csv("bad", "")
        assert "bad" not in registry

    def test_disk_persistence_survives_reopen(self, tmp_path):
        first = TableRegistry(tmp_path / "tables")
        first.put_csv("people", CSV, categorical=["married"])
        reopened = TableRegistry(tmp_path / "tables")
        assert reopened.names() == ["people"]
        table = reopened.get("people")
        assert table.num_records == 3
        # The forced-kind sidecar must survive too.
        kinds = {
            a["name"]: a["kind"]
            for a in reopened.describe("people")["attributes"]
        }
        assert kinds["married"] == "categorical"

    def test_register_inline_round_trips(self):
        registry = TableRegistry()
        name = registry.register_inline(CSV, [], ["married"])
        assert registry.get(name).num_records == 3

"""Unit tests for boolean Apriori [AS94] (repro.booleans.apriori)."""

import itertools
import random

import pytest

from repro.booleans import (
    TransactionDatabase,
    apriori,
    generate_candidates,
)


@pytest.fixture
def db():
    # Classic small basket database.
    return TransactionDatabase(
        [
            ["bread", "milk"],
            ["bread", "diapers", "beer", "eggs"],
            ["milk", "diapers", "beer", "cola"],
            ["bread", "milk", "diapers", "beer"],
            ["bread", "milk", "diapers", "cola"],
        ]
    )


class TestCandidateGeneration:
    def test_join_on_shared_prefix(self):
        prev = [("a", "b"), ("a", "c"), ("b", "c")]
        assert generate_candidates(prev, 3) == [("a", "b", "c")]

    def test_prune_removes_missing_subset(self):
        # ("a","b","d") would need ("b","d") which is absent.
        prev = [("a", "b"), ("a", "d"), ("a", "c"), ("b", "c")]
        assert generate_candidates(prev, 3) == [("a", "b", "c")]

    def test_no_candidates_from_disjoint_prefixes(self):
        assert generate_candidates([("a", "b"), ("c", "d")], 3) == []

    def test_k_below_two_rejected(self):
        with pytest.raises(ValueError):
            generate_candidates([("a",)], 1)

    def test_paper_as94_example(self):
        # L3 = {123, 124, 134, 135, 234} -> join gives {1234, 1345},
        # prune kills 1345 (145 not in L3).
        l3 = [
            (1, 2, 3),
            (1, 2, 4),
            (1, 3, 4),
            (1, 3, 5),
            (2, 3, 4),
        ]
        assert generate_candidates(l3, 4) == [(1, 2, 3, 4)]


class TestApriori:
    def test_known_supports(self, db):
        result = apriori(db, min_support=0.6)
        assert result.support_counts[("bread",)] == 4
        assert result.support_counts[("diapers", "milk")] == 3
        assert ("beer", "milk") not in result.support_counts

    def test_support_fraction(self, db):
        result = apriori(db, min_support=0.6)
        assert result.support(("bread", "milk")) == pytest.approx(0.6)

    def test_max_size_caps_itemsets(self, db):
        result = apriori(db, min_support=0.2, max_size=2)
        assert result.max_size == 2

    def test_min_support_zero_finds_everything(self, db):
        result = apriori(db, min_support=0.0)
        # every subset of some transaction is frequent
        assert ("beer", "bread", "diapers", "eggs") in result.support_counts

    def test_min_support_one_only_universal_items(self, db):
        result = apriori(db, min_support=1.0)
        assert result.frequent_itemsets() == []

    def test_invalid_support_rejected(self, db):
        with pytest.raises(ValueError):
            apriori(db, min_support=1.5)

    def test_invalid_backend_rejected(self, db):
        with pytest.raises(ValueError, match="backend"):
            apriori(db, 0.5, counting="fancy")

    def test_hashtree_and_naive_agree(self, db):
        a = apriori(db, 0.4, counting="hashtree")
        b = apriori(db, 0.4, counting="naive")
        assert a.support_counts == b.support_counts

    def test_downward_closure(self, db):
        result = apriori(db, min_support=0.4)
        frequent = set(result.support_counts)
        for itemset in frequent:
            for r in range(1, len(itemset)):
                for subset in itertools.combinations(itemset, r):
                    assert subset in frequent

    def test_counts_match_brute_force_on_random_data(self):
        rng = random.Random(11)
        items = list("abcdefgh")
        db = TransactionDatabase(
            rng.sample(items, rng.randint(1, 6)) for _ in range(120)
        )
        result = apriori(db, min_support=0.15)
        for itemset, count in result.support_counts.items():
            assert count == db.support_count(itemset)

    def test_candidate_counts_recorded(self, db):
        result = apriori(db, min_support=0.4)
        assert result.candidate_counts[0] == 6  # distinct items seen
        assert len(result.candidate_counts) >= 2

    def test_empty_database(self):
        result = apriori(TransactionDatabase([]), 0.5)
        assert result.support_counts == {}
        assert result.support(("x",)) == 0.0

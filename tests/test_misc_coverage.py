"""Targeted tests for smaller public surfaces not covered elsewhere."""

import numpy as np
import pytest

from repro.core import (
    Item,
    MinerConfig,
    QuantitativeMiner,
    TableMapper,
    make_itemset,
)
from repro.core.counting import choose_backend, group_candidates
from repro.core.items import specializations_within
from repro.data import age_partition_edges, people_table
from repro.table import RelationalTable, TableSchema, quantitative


class TestSpecializationsWithin:
    def test_reference_helper(self):
        x = make_itemset([Item(0, 0, 9)])
        pool = {
            make_itemset([Item(0, 1, 8)]): 0.2,
            make_itemset([Item(0, 0, 9)]): 0.3,  # itself: excluded
            make_itemset([Item(1, 1, 8)]): 0.2,  # other attribute
        }
        got = specializations_within(x, pool)
        assert got == [make_itemset([Item(0, 1, 8)])]


class TestDescribeValue:
    def setup_method(self):
        self.mapper = TableMapper(
            people_table(),
            MinerConfig(
                min_support=0.4,
                max_support=0.6,
                num_partitions={"Age": age_partition_edges()},
            ),
        )

    def test_categorical_value(self):
        assert self.mapper.mapping("Married").describe_value(1) == "No"

    def test_partitioned_interval(self):
        assert self.mapper.mapping("Age").describe_value(0) == "[20, 25)"

    def test_unpartitioned_value(self):
        assert self.mapper.mapping("NumCars").describe_value(2) == "2"


class TestRealizedCompleteness:
    def test_equation1_on_known_partitioning(self):
        # 1000 uniform values, 10 equi-depth intervals, minsup 0.2,
        # 1 quantitative attribute: s ~= 0.1 -> K ~= 1 + 2*0.1/0.2 = 2.
        rng = np.random.default_rng(0)
        schema = TableSchema([quantitative("x")])
        table = RelationalTable.from_columns(
            schema, [rng.uniform(0, 1, 1000)]
        )
        config = MinerConfig(
            min_support=0.2, max_support=0.5, num_partitions={"x": 10}
        )
        miner = QuantitativeMiner(table, config)
        assert miner.realized_completeness(0.2) == pytest.approx(2.0, abs=0.1)

    def test_no_partitioning_means_no_loss(self):
        schema = TableSchema([quantitative("x")])
        table = RelationalTable.from_columns(
            schema, [np.array([1.0, 2.0, 3.0] * 10)]
        )
        miner = QuantitativeMiner(
            table, MinerConfig(min_support=0.2, max_support=0.5)
        )
        assert miner.realized_completeness(0.2) == 1.0


class TestAutoBackendHeuristic:
    def test_huge_array_falls_back_to_rtree(self):
        # Five 60-valued dimensions -> 60^5 cells; far beyond any budget
        # a small candidate set justifies.
        rng = np.random.default_rng(1)
        schema = TableSchema(
            [quantitative(f"q{i}") for i in range(5)]
        )
        table = RelationalTable.from_columns(
            schema, [rng.integers(0, 60, 500).astype(float) for _ in range(5)]
        )
        mapper = TableMapper(
            table, MinerConfig(min_support=0.1, num_partitions=60)
        )
        candidates = [
            make_itemset([Item(a, 0, 5) for a in range(5)]),
        ]
        (group,) = group_candidates(candidates, set(range(5)))
        resolved = choose_backend(
            group, mapper, "auto", memory_budget_bytes=64 * 1024 * 1024
        )
        assert resolved == "rtree"

    def test_small_array_preferred(self):
        mapper = TableMapper(
            people_table(),
            MinerConfig(
                min_support=0.4,
                max_support=0.6,
                num_partitions={"Age": age_partition_edges()},
            ),
        )
        candidates = [make_itemset([Item(0, 0, 1), Item(2, 0, 1)])]
        (group,) = group_candidates(candidates, {0, 2})
        assert (
            choose_backend(group, mapper, "auto", 1 << 30) == "array"
        )


class TestInterestCounterFallback:
    def test_large_signature_uses_mask_scan(self):
        """When the joint table would exceed the cell limit, on-demand
        supports fall back to record scans — results must agree."""
        from repro.core import InterestEvaluator
        from repro.core.apriori_quant import find_frequent_itemsets
        import repro.core.interest as interest_module

        rng = np.random.default_rng(2)
        schema = TableSchema([quantitative("x"), quantitative("y")])
        table = RelationalTable.from_columns(
            schema,
            [
                rng.integers(0, 30, 400).astype(float),
                rng.integers(0, 30, 400).astype(float),
            ],
        )
        config = MinerConfig(
            min_support=0.2, max_support=0.6, num_partitions=30,
            interest_level=1.2,
        )
        mapper = TableMapper(table, config)
        counts, freq = find_frequent_itemsets(mapper, config)
        evaluator = InterestEvaluator(counts, freq, mapper, config)
        probe = make_itemset([Item(0, 0, 3), Item(1, 0, 3)])
        fast = evaluator.itemset_support(probe)

        original = interest_module._COUNTER_CELL_LIMIT
        interest_module._COUNTER_CELL_LIMIT = 1  # force the mask path
        try:
            slow_eval = InterestEvaluator(counts, freq, mapper, config)
            slow = slow_eval.itemset_support(probe)
        finally:
            interest_module._COUNTER_CELL_LIMIT = original
        assert fast == pytest.approx(slow)

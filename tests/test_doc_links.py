"""The documentation link checker: repo docs pass, broken refs are caught."""

import importlib.util
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent
CHECKER = ROOT / "tools" / "check_doc_links.py"


def load_checker():
    spec = importlib.util.spec_from_file_location("check_doc_links", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRepositoryDocs:
    def test_all_references_resolve(self):
        proc = subprocess.run(
            [sys.executable, str(CHECKER)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "all documentation references resolve" in proc.stdout


class TestCheckerCatchesBreakage:
    def test_broken_relative_link(self, tmp_path):
        checker = load_checker()
        doc = tmp_path / "guide.md"
        doc.write_text("see [the example](../examples/missing.py) here\n")
        broken = list(checker._check_file(doc))
        assert broken == [(1, "../examples/missing.py")]

    def test_broken_inline_code_path(self, tmp_path):
        checker = load_checker()
        doc = tmp_path / "guide.md"
        doc.write_text("run `benchmarks/bench_nonexistent.py` first\n")
        broken = list(checker._check_file(doc))
        assert broken == [(1, "benchmarks/bench_nonexistent.py")]

    def test_non_repo_paths_ignored(self, tmp_path):
        checker = load_checker()
        doc = tmp_path / "guide.md"
        doc.write_text(
            "writes `rules.json` and `out.csv`; "
            "see [docs](https://example.com/x.md) and [top](#anchor)\n"
        )
        assert list(checker._check_file(doc)) == []

    def test_existing_references_pass(self, tmp_path):
        checker = load_checker()
        doc = tmp_path / "guide.md"
        (tmp_path / "other.md").write_text("x\n")
        doc.write_text("see [other](other.md) and `README.md`\n")
        assert list(checker._check_file(doc)) == []


class TestIndexReachability:
    def _checker_at(self, tmp_path):
        checker = load_checker()
        checker.ROOT = tmp_path
        (tmp_path / "docs").mkdir()
        return checker

    def test_orphan_guide_detected(self, tmp_path):
        checker = self._checker_at(tmp_path)
        (tmp_path / "docs" / "index.md").write_text(
            "see [linked](linked.md)\n"
        )
        (tmp_path / "docs" / "linked.md").write_text("x\n")
        (tmp_path / "docs" / "orphan.md").write_text("x\n")
        orphans = checker._unreachable_from_index()
        assert [p.name for p in orphans] == ["orphan.md"]

    def test_transitive_references_count(self, tmp_path):
        checker = self._checker_at(tmp_path)
        (tmp_path / "docs" / "index.md").write_text(
            "see [a](a.md)\n"
        )
        (tmp_path / "docs" / "a.md").write_text(
            "see `docs/b.md` too\n"
        )
        (tmp_path / "docs" / "b.md").write_text("x\n")
        assert checker._unreachable_from_index() == []

    def test_no_index_no_contract(self, tmp_path):
        checker = self._checker_at(tmp_path)
        (tmp_path / "docs" / "floating.md").write_text("x\n")
        assert checker._unreachable_from_index() == []

    def test_repository_index_reaches_every_guide(self):
        checker = load_checker()
        assert checker._unreachable_from_index() == []

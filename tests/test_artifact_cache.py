"""The artifact cache: backends, engine integration, and the core
correctness property — a cached re-mine is bit-identical to a cold run.

Caching is an optimization that must be *invisible* in the output.  The
hypothesis property below drives a miner through a confidence/interest
sweep against a shared cache and checks every result (including dict
insertion order) against a fresh cache-free miner at the same point.
"""

import dataclasses
import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CacheConfig, MinerConfig, QuantitativeMiner
from repro.engine import MISSING, DiskCache, MemoryCache, NullCache
from repro.table import RelationalTable, TableSchema, categorical, quantitative


def build_table(x_values, c_values):
    schema = TableSchema(
        [quantitative("x"), categorical("c", ("a", "b", "d"))]
    )
    return RelationalTable.from_columns(
        schema,
        [
            np.array(x_values, dtype=float),
            np.array(c_values, dtype=np.int64) % 3,
        ],
    )


def small_table():
    return build_table(list(range(30)), [v % 3 for v in range(30)])


NO_CACHE = CacheConfig(enabled=False)


class TestMemoryCache:
    def test_roundtrip_and_counters(self):
        cache = MemoryCache()
        assert cache.get("k") is MISSING
        cache.put("k", {"a": [1, 2]})
        assert cache.get("k") == {"a": [1, 2]}
        assert (cache.hits, cache.misses, cache.puts) == (1, 1, 1)

    def test_values_are_copies_not_aliases(self):
        # The pipeline mutates support_counts in place; a cache that
        # returned its stored object would be poisoned by the first run.
        cache = MemoryCache()
        value = {"counts": {("x",): 3}}
        cache.put("k", value)
        value["counts"]["poisoned"] = True
        first = cache.get("k")
        first["counts"]["also-poisoned"] = True
        assert cache.get("k") == {"counts": {("x",): 3}}

    def test_lru_eviction(self):
        cache = MemoryCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": now "b" is oldest
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        assert cache.get("k") is MISSING
        cache.put("k", {"rules": (1, 2)})
        assert cache.get("k") == {"rules": (1, 2)}

    def test_persists_across_instances(self, tmp_path):
        DiskCache(str(tmp_path)).put("k", "v")
        again = DiskCache(str(tmp_path))
        assert again.get("k") == "v"
        assert again.hits == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        cache.put("k", "v")
        path = tmp_path / "k.pkl"
        path.write_bytes(b"not a pickle")
        assert cache.get("k") is MISSING
        assert not path.exists()

    def test_expands_user_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        cache = DiskCache("~/cache-here")
        cache.put("k", 1)
        assert (tmp_path / "cache-here" / "k.pkl").exists()


class TestNullCache:
    def test_never_stores(self):
        cache = NullCache()
        cache.put("k", 1)
        assert cache.get("k") is MISSING
        assert cache.misses == 1


class TestCacheConfig:
    def test_backend_resolution(self, tmp_path):
        assert isinstance(CacheConfig().build(), MemoryCache)
        assert CacheConfig(enabled=False).build() is None
        assert CacheConfig(backend="none").build() is None
        disk = CacheConfig(
            backend="disk", directory=str(tmp_path)
        ).build()
        assert isinstance(disk, DiskCache)

    def test_directory_implies_disk_backend(self, tmp_path):
        config = CacheConfig(directory=str(tmp_path))
        assert config.backend == "disk"

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            CacheConfig(backend="redis")
        with pytest.raises(ValueError):
            CacheConfig(max_entries=0)


class TestEngineIntegration:
    def test_second_identical_run_hits_every_cacheable_stage(self):
        miner = QuantitativeMiner(
            small_table(),
            MinerConfig(min_support=0.2, interest_level=1.1),
        )
        cold = miner.mine()
        warm = miner.mine()
        assert cold.stats.execution.stage_cache_events[
            "frequent_itemsets"
        ] == "miss"
        events = warm.stats.execution.stage_cache_events
        assert events["frequent_itemsets"] == "hit"
        assert events["rule_generation"] == "hit"
        assert events["interest"] == "hit"
        assert warm.stats.execution.cache_hits == 3
        assert warm.rules == cold.rules
        assert warm.interesting_rules == cold.interesting_rules
        # Result-set counters must survive the stages being skipped.
        assert warm.stats.num_rules == cold.stats.num_rules == len(
            cold.rules
        )
        assert warm.stats.num_frequent_itemsets == len(cold.support_counts)
        assert warm.stats.num_interesting_rules == len(
            cold.interesting_rules
        )

    def test_confidence_only_change_reenters_at_rulegen(self):
        config = MinerConfig(
            min_support=0.2, min_confidence=0.3, interest_level=1.1
        )
        miner = QuantitativeMiner(small_table(), config)
        miner.mine()
        warm = miner.mine(
            dataclasses.replace(config, min_confidence=0.6)
        )
        events = warm.stats.execution.stage_cache_events
        assert events["frequent_itemsets"] == "hit"
        assert events["rule_generation"] == "miss"

    def test_interest_only_change_reenters_at_interest(self):
        config = MinerConfig(
            min_support=0.2, min_confidence=0.3, interest_level=1.1
        )
        miner = QuantitativeMiner(small_table(), config)
        miner.mine()
        warm = miner.mine(
            dataclasses.replace(config, interest_level=1.5)
        )
        events = warm.stats.execution.stage_cache_events
        assert events["frequent_itemsets"] == "hit"
        assert events["rule_generation"] == "hit"
        assert events["interest"] == "miss"

    def test_disabled_cache_skips_consultation(self):
        miner = QuantitativeMiner(
            small_table(),
            MinerConfig(min_support=0.2, cache=CacheConfig(enabled=False)),
        )
        result = miner.mine()
        events = result.stats.execution.stage_cache_events
        assert set(events.values()) == {"skipped"}
        assert result.stats.execution.cache_hits == 0
        assert miner.cache is None

    def test_cached_artifacts_are_not_aliased_across_runs(self):
        miner = QuantitativeMiner(
            small_table(), MinerConfig(min_support=0.2)
        )
        first = miner.mine()
        first.support_counts.clear()
        first.rules.clear()
        warm = miner.mine()
        assert warm.stats.execution.cache_hits > 0
        assert len(warm.support_counts) > 0
        assert warm.support_counts is not first.support_counts

    def test_disk_cache_shared_across_miners(self, tmp_path):
        config = MinerConfig(
            min_support=0.2,
            interest_level=1.1,
            cache=CacheConfig(backend="disk", directory=str(tmp_path)),
        )
        first = QuantitativeMiner(small_table(), config).mine()
        # A brand-new miner (fresh process in real life) hits the same
        # on-disk artifacts.
        second = QuantitativeMiner(small_table(), config).mine()
        events = second.stats.execution.stage_cache_events
        assert events["frequent_itemsets"] == "hit"
        assert events["rule_generation"] == "hit"
        assert second.rules == first.rules

    def test_per_run_timings_reset_cumulative_accumulate(self):
        miner = QuantitativeMiner(
            small_table(), MinerConfig(min_support=0.2)
        )
        first = miner.mine()
        second = miner.mine()
        per_run = second.stats.execution.stage_seconds
        cumulative = second.stats.execution.cumulative_stage_seconds
        assert set(per_run) <= set(cumulative)
        for name, seconds in per_run.items():
            expected = first.stats.execution.stage_seconds.get(
                name, 0.0
            ) + seconds
            assert cumulative[name] == expected

    def test_summary_reports_cache_lines(self):
        miner = QuantitativeMiner(
            small_table(), MinerConfig(min_support=0.2)
        )
        miner.mine()
        summary = miner.mine().stats.summary()
        assert "cache:" in summary
        assert "hit(s)" in summary

    def test_flat_cache_overrides(self, tmp_path):
        from repro.core import mine_quantitative_rules

        result = mine_quantitative_rules(
            small_table(), min_support=0.2, cache_enabled=False
        )
        events = result.stats.execution.stage_cache_events
        assert set(events.values()) == {"skipped"}
        result = mine_quantitative_rules(
            small_table(), min_support=0.2, cache_dir=str(tmp_path)
        )
        assert any(tmp_path.iterdir())

    def test_flat_and_block_cache_overrides_conflict(self):
        import pytest

        from repro.core import mine_quantitative_rules

        with pytest.raises(TypeError):
            mine_quantitative_rules(
                small_table(),
                cache_enabled=False,
                cache=CacheConfig(),
            )


draws = st.lists(st.integers(0, 9), min_size=25, max_size=60)


class TestCachedRemineProperty:
    @given(
        draws,
        draws,
        st.floats(0.1, 0.9),
        st.floats(1.0, 2.5),
    )
    @settings(max_examples=10, deadline=None)
    def test_warm_remine_bit_identical_to_cold(
        self, xs, cs, min_confidence, interest_level
    ):
        """Re-mining with changed downstream parameters against a warm
        cache equals a cold cache-free run at the same point, including
        dict insertion order."""
        n = min(len(xs), len(cs))
        table = build_table(xs[:n], cs[:n])
        base = MinerConfig(
            min_support=0.2,
            min_confidence=0.3,
            interest_level=1.1,
            partial_completeness=3.0,
        )
        miner = QuantitativeMiner(table, base)
        miner.mine()  # warm the cache at the base point

        point = dataclasses.replace(
            base,
            min_confidence=min_confidence,
            interest_level=interest_level,
        )
        warm = miner.mine(point)
        cold = QuantitativeMiner(
            table, dataclasses.replace(point, cache=NO_CACHE)
        ).mine()

        assert warm.stats.execution.stage_cache_events[
            "frequent_itemsets"
        ] == "hit"
        assert warm.support_counts == cold.support_counts
        assert list(warm.support_counts) == list(cold.support_counts)
        assert warm.rules == cold.rules
        assert warm.interesting_rules == cold.interesting_rules
        assert pickle.dumps(warm.rules) == pickle.dumps(cold.rules)

    @given(draws, st.integers(0, 59))
    @settings(max_examples=10, deadline=None)
    def test_table_mutation_invalidates(self, xs, position):
        """Changing any record forces the counting stages to re-run."""
        if len(set(xs)) < 2:
            return  # mutation below would be a no-op
        table = build_table(xs, xs)
        config = MinerConfig(min_support=0.2, partial_completeness=3.0)
        shared = CacheConfig()
        miner = QuantitativeMiner(
            table, dataclasses.replace(config, cache=shared)
        )
        first = miner.mine()

        mutated = list(xs)
        i = position % len(xs)
        mutated[i] = (mutated[i] + 1) % 10
        if mutated == list(xs):
            mutated[i] = (mutated[i] + 1) % 10
        other = QuantitativeMiner(
            build_table(mutated, mutated),
            dataclasses.replace(config, cache=shared),
        )
        # Hand the second miner the first one's cache to prove the
        # *fingerprint* (not cache identity) keeps the tables apart.
        other._cache = miner.cache
        result = other.mine()
        assert (
            result.stats.execution.stage_cache_events["frequent_itemsets"]
            == "miss"
        )
        reference = QuantitativeMiner(
            build_table(mutated, mutated),
            dataclasses.replace(config, cache=NO_CACHE),
        ).mine()
        assert result.support_counts == reference.support_counts
        assert result.rules == reference.rules
        assert first.stats is not result.stats

    @given(st.floats(0.15, 0.45))
    @settings(max_examples=6, deadline=None)
    def test_partitioning_change_invalidates(self, min_support):
        """min_support feeds Equation 2, so it must never hit the cache
        entries of a different support level."""
        table = small_table()
        base = MinerConfig(min_support=0.2, partial_completeness=3.0)
        miner = QuantitativeMiner(table, base)
        miner.mine()
        if min_support == base.min_support:
            return
        point = dataclasses.replace(base, min_support=min_support)
        warm = QuantitativeMiner(table, point)
        warm._cache = miner.cache
        result = warm.mine()
        assert (
            result.stats.execution.stage_cache_events["frequent_itemsets"]
            == "miss"
        )

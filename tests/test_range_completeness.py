"""Tests for the range-based partial completeness measure (Section 7
future work) and its equi-cardinality partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Item,
    MinerConfig,
    QuantitativeMiner,
    equi_cardinality,
    intervals_for_range_completeness,
    is_range_k_complete,
    make_itemset,
    partition_column,
    range_completeness_level,
)
from repro.table import RelationalTable, TableSchema, quantitative


class TestFormulas:
    def test_level_from_interval_size(self):
        # m values per interval -> K = 2m - 1; singleton intervals lose
        # nothing (K = 1).
        assert range_completeness_level(1) == 1.0
        assert range_completeness_level(3) == 5.0

    def test_inverse(self):
        # K = 5 allows 3 values per interval: 10 values -> 4 intervals.
        assert intervals_for_range_completeness(10, 5.0) == 4
        assert intervals_for_range_completeness(10, 1.0) == 10

    def test_round_trip_bound(self):
        for num_distinct in (7, 20, 53):
            for k in (1.0, 3.0, 9.0):
                intervals = intervals_for_range_completeness(num_distinct, k)
                per_interval = -(-num_distinct // intervals)  # ceil
                assert range_completeness_level(per_interval) <= k + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            range_completeness_level(0)
        with pytest.raises(ValueError):
            intervals_for_range_completeness(0, 2.0)
        with pytest.raises(ValueError):
            intervals_for_range_completeness(5, 0.5)
        with pytest.raises(ValueError):
            is_range_k_complete({}, {}, 0.9)


class TestChecker:
    def test_simple_positive_case(self):
        x = make_itemset([Item(0, 2, 3)])  # width 2
        general = make_itemset([Item(0, 0, 3)])  # width 4 = 2x
        assert is_range_k_complete(
            {general: 0.5}, {x: 0.2, general: 0.5}, 2.0
        )

    def test_width_blowup_fails(self):
        x = make_itemset([Item(0, 2, 2)])  # width 1
        general = make_itemset([Item(0, 0, 3)])  # width 4 > 3x
        assert not is_range_k_complete(
            {general: 0.5}, {x: 0.2, general: 0.5}, 3.0
        )

    def test_candidate_must_be_subset(self):
        stranger = make_itemset([Item(1, 0, 0)])
        assert not is_range_k_complete({stranger: 0.1}, {}, 5.0)


class TestEquiCardinality:
    def test_even_value_counts(self):
        # 12 distinct values into 4 intervals -> 3 each.
        column = np.repeat(np.arange(12, dtype=float), [1, 5, 2, 9, 1, 1, 3, 7, 2, 2, 4, 1])
        part = equi_cardinality(column, 4)
        assert part.partitioned
        codes = part.assign(np.arange(12, dtype=float))
        counts = np.bincount(codes, minlength=4)
        assert counts.max() == 3
        assert counts.min() == 3

    def test_guaranteed_range_level(self):
        rng = np.random.default_rng(1)
        column = rng.exponential(5, 2_000).round(1)
        for intervals in (4, 8, 16):
            part = equi_cardinality(column, intervals)
            if not part.partitioned:
                continue
            distinct = np.unique(column)
            codes = part.assign(distinct)
            m = int(np.bincount(codes).max())
            num_distinct = len(distinct)
            budget = -(-num_distinct // intervals)  # ceil
            assert m <= budget + 1  # rounding of cut positions

    def test_dispatch(self):
        column = np.arange(100, dtype=float)
        part = partition_column(column, 5, "equicardinality")
        assert part.partitioned

    def test_config_accepts_method(self):
        MinerConfig(partition_method="equicardinality")

    def test_few_values_unpartitioned(self):
        part = equi_cardinality(np.array([1.0, 2.0]), 5)
        assert not part.partitioned


class TestEndToEndRangeCompleteness:
    """Mine with equi-cardinality partitioning, translate itemsets back
    to value space, and verify the range-based guarantee empirically."""

    @given(
        st.lists(st.integers(0, 199), min_size=60, max_size=150),
        st.integers(3, 8),
    )
    @settings(max_examples=15, deadline=None)
    def test_partitioned_itemsets_are_range_k_complete(
        self, values, intervals
    ):
        column = np.array(values, dtype=float)
        schema = TableSchema([quantitative("x")])
        table = RelationalTable.from_columns(schema, [column])
        minsup = 0.15

        reference = MinerConfig(
            min_support=minsup,
            max_support=1.0,
            num_partitions={"x": 10**6},
        )
        full = QuantitativeMiner(table, reference).mine()
        full_set = {
            itemset: count for itemset, count in full.support_counts.items()
        }

        config = MinerConfig(
            min_support=minsup,
            max_support=1.0,
            num_partitions={"x": intervals},
            partition_method="equicardinality",
        )
        miner = QuantitativeMiner(table, config)
        result = miner.mine()
        part = miner.mapper.mapping("x").partitioning
        if not part.partitioned:
            return

        raw_values = sorted(set(values))
        rank = {v: i for i, v in enumerate(raw_values)}
        candidate_set = {}
        for itemset, count in result.support_counts.items():
            (item,) = itemset
            lo_raw = part.interval_bounds(item.lo)[0]
            hi_raw = part.interval_bounds(item.hi)[1]
            members = [v for v in raw_values if lo_raw <= v <= hi_raw]
            if not members:
                continue
            translated = (Item(0, rank[members[0]], rank[members[-1]]),)
            if translated in full_set:
                candidate_set[translated] = count

        distinct = np.unique(column)
        codes = part.assign(distinct)
        m = int(np.bincount(codes).max())
        k_level = range_completeness_level(m)
        assert is_range_k_complete(candidate_set, full_set, k_level)

"""Unit tests for the baselines ([PS91] and naive boolean mapping)."""

import numpy as np
import pytest

from repro.baselines import (
    mine_naive_boolean,
    mine_single_attribute_rules,
    mine_table,
    to_transactions,
)
from repro.core import MinerConfig, QuantitativeMiner, TableMapper
from repro.data import (
    age_partition_edges,
    generate_credit_table,
    people_table,
)


class TestPS91:
    def test_known_rules_on_tiny_data(self):
        # Two columns; value 0 of column 0 always co-occurs with value 1
        # of column 1.
        columns = [
            np.array([0, 0, 0, 1, 1]),
            np.array([1, 1, 1, 0, 1]),
        ]
        rules = mine_single_attribute_rules(columns, 0.2, 0.9)
        keys = {
            (r.antecedent_attr, r.antecedent_value,
             r.consequent_attr, r.consequent_value)
            for r in rules
        }
        assert (0, 0, 1, 1) in keys
        assert (1, 0, 0, 1) in keys  # value 0 of col 1 -> col 0 = 1

    def test_support_and_confidence_values(self):
        columns = [np.array([0, 0, 1, 1]), np.array([1, 1, 1, 0])]
        rules = mine_single_attribute_rules(columns, 0.0, 0.0)
        by_key = {
            (r.antecedent_attr, r.antecedent_value,
             r.consequent_attr, r.consequent_value): r
            for r in rules
        }
        rule = by_key[(0, 0, 1, 1)]
        assert rule.support == pytest.approx(0.5)
        assert rule.confidence == pytest.approx(1.0)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(4)
        columns = [rng.integers(0, 4, 300) for _ in range(3)]
        rules = mine_single_attribute_rules(columns, 0.05, 0.4)
        got = {
            (r.antecedent_attr, r.antecedent_value,
             r.consequent_attr, r.consequent_value): (
                r.support, r.confidence
            )
            for r in rules
        }
        n = 300
        for a in range(3):
            for b in range(3):
                if a == b:
                    continue
                for va in range(4):
                    a_mask = columns[a] == va
                    for vb in range(4):
                        joint = int((a_mask & (columns[b] == vb)).sum())
                        sup = joint / n
                        if a_mask.sum() == 0:
                            continue
                        conf = joint / int(a_mask.sum())
                        key = (a, va, b, vb)
                        if sup >= 0.05 and conf >= 0.4:
                            assert key in got
                            assert got[key][0] == pytest.approx(sup)
                            assert got[key][1] == pytest.approx(conf)
                        else:
                            assert key not in got

    def test_antecedent_restriction(self):
        columns = [np.array([0, 0, 1]), np.array([1, 1, 0])]
        rules = mine_single_attribute_rules(
            columns, 0.0, 0.0, antecedent_attrs=[0]
        )
        assert all(r.antecedent_attr == 0 for r in rules)

    def test_single_pair_only_rules(self):
        """[PS91]'s defining limitation: one attribute per side."""
        table = generate_credit_table(300, seed=9)
        rules = mine_table(table, 4, 0.1, 0.3)
        assert rules  # something is found
        # Every rule is a single <attr, value> pair on each side — the
        # type itself enforces it; spot-check the fields exist.
        r = rules[0]
        assert isinstance(r.antecedent_value, int)

    def test_empty_input(self):
        assert mine_single_attribute_rules([], 0.1, 0.5) == []
        assert mine_single_attribute_rules([np.array([])], 0.1, 0.5) == []

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            mine_single_attribute_rules(
                [np.array([1]), np.array([1, 2])], 0.1, 0.5
            )

    def test_str(self):
        columns = [np.array([0, 0]), np.array([1, 1])]
        rules = mine_single_attribute_rules(columns, 0.0, 0.0)
        assert "=>" in str(rules[0])


class TestNaiveBoolean:
    def config(self):
        return MinerConfig(
            min_support=0.4,
            min_confidence=0.5,
            max_support=0.6,
            num_partitions={"Age": age_partition_edges()},
        )

    def test_to_transactions_shape(self):
        mapper = TableMapper(people_table(), self.config())
        db = to_transactions(mapper)
        assert db.num_transactions == 5
        # Each transaction has one item per attribute.
        assert all(len(t) == 3 for t in db)

    def test_misses_range_rules(self):
        """The MinSup problem: value-level items lack support.

        <NumCars: 0..1> => <Married: No> holds at 40%/66% for the range
        miner, but no single NumCars value reaches 40% support, so the
        naive mapping cannot express it.
        """
        config = self.config()
        naive = mine_naive_boolean(people_table(), config)
        # The naive miner never has an item for NumCars=0..1; at
        # minsup 40% NumCars=0 (support 20%) vanishes entirely.
        items = {
            item for rule in naive.rules for item in rule.antecedent
        }
        assert (2, 0) not in items

    def test_finds_fewer_rules_than_range_miner(self):
        config = self.config()
        naive = mine_naive_boolean(people_table(), config)
        full = QuantitativeMiner(people_table(), config).mine()
        assert len(naive.rules) < len(full.rules)

    def test_value_level_rules_agree_with_range_miner(self):
        """Rules over single values must match the quantitative miner."""
        config = self.config()
        naive = mine_naive_boolean(people_table(), config)
        full = QuantitativeMiner(people_table(), config).mine()
        full_keys = {
            (
                tuple((it.attribute, it.lo) for it in r.antecedent),
                tuple((it.attribute, it.lo) for it in r.consequent),
                round(r.support, 9),
                round(r.confidence, 9),
            )
            for r in full.rules
            if all(
                it.lo == it.hi for it in r.antecedent + r.consequent
            )
        }
        naive_keys = {
            (r.antecedent, r.consequent,
             round(r.support, 9), round(r.confidence, 9))
            for r in naive.rules
        }
        assert naive_keys == full_keys

    def test_describe_renders(self):
        naive = mine_naive_boolean(people_table(), self.config())
        if naive.rules:
            assert "=>" in naive.describe(naive.rules[0])

"""Unit tests for ancestor helpers in repro.core.rules."""

from repro.core import Item, QuantitativeRule, make_itemset
from repro.core.rules import close_ancestors, itemset_close_ancestors


def rule(ant_lo, ant_hi, sup=0.3, conf=0.7):
    return QuantitativeRule(
        (Item(0, ant_lo, ant_hi),), (Item(1, 0, 0),), sup, conf
    )


class TestCloseAncestors:
    def test_minimal_ancestor_selected(self):
        # grandparent [0,9] > parent [1,8] > child [2,7].
        grandparent, parent, child = rule(0, 9), rule(1, 8), rule(2, 7)
        pool = [grandparent, parent, child]
        assert close_ancestors(child, pool) == [parent]

    def test_multiple_incomparable_close_ancestors(self):
        child = rule(3, 5)
        left = rule(2, 5)
        right = rule(3, 6)
        pool = [left, right, child]
        got = close_ancestors(child, pool)
        assert sorted(got, key=lambda r: r.antecedent) == sorted(
            [left, right], key=lambda r: r.antecedent
        )

    def test_no_ancestors(self):
        assert close_ancestors(rule(0, 9), [rule(0, 9), rule(1, 8)]) == []

    def test_self_excluded(self):
        r = rule(1, 4)
        assert close_ancestors(r, [r]) == []


class TestItemsetCloseAncestors:
    def test_chain(self):
        grand = make_itemset([Item(0, 0, 9)])
        parent = make_itemset([Item(0, 1, 8)])
        child = make_itemset([Item(0, 2, 7)])
        assert itemset_close_ancestors(child, [grand, parent, child]) == [
            parent
        ]

    def test_equal_itemset_not_ancestor(self):
        x = make_itemset([Item(0, 1, 5)])
        assert itemset_close_ancestors(x, [x]) == []

"""Unit tests for the [AS94]-style basket generator."""

import pytest

from repro.booleans import apriori
from repro.data import generate_basket_database


class TestGenerator:
    def test_deterministic_under_seed(self):
        a = generate_basket_database(200, seed=3)
        b = generate_basket_database(200, seed=3)
        assert a.transactions == b.transactions

    def test_different_seeds_differ(self):
        a = generate_basket_database(200, seed=3)
        b = generate_basket_database(200, seed=4)
        assert a.transactions != b.transactions

    def test_requested_count(self):
        db = generate_basket_database(123, seed=0)
        assert len(db) == 123

    def test_average_size_near_target(self):
        db = generate_basket_database(
            3_000, avg_transaction_size=10, num_items=500, seed=1
        )
        avg = sum(len(t) for t in db) / len(db)
        assert 6 <= avg <= 12

    def test_items_within_universe(self):
        db = generate_basket_database(300, num_items=50, seed=2)
        assert all(0 <= i < 50 for t in db for i in t)

    def test_no_empty_transactions(self):
        db = generate_basket_database(
            500, avg_transaction_size=1, corruption_mean=0.9, seed=5
        )
        assert all(len(t) >= 1 for t in db)

    def test_embedded_patterns_create_frequent_itemsets(self):
        # Skewed pattern weights must produce multi-item frequent
        # itemsets well above the independence baseline.
        db = generate_basket_database(
            2_000,
            avg_transaction_size=8,
            avg_pattern_size=3,
            num_items=400,
            num_patterns=40,
            seed=6,
        )
        result = apriori(db, 0.02, max_size=3)
        assert result.max_size >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_basket_database(0)
        with pytest.raises(ValueError):
            generate_basket_database(10, avg_pattern_size=0)
        with pytest.raises(ValueError):
            generate_basket_database(10, avg_transaction_size=0)
        with pytest.raises(ValueError):
            generate_basket_database(10, correlation=1.5)

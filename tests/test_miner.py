"""Integration tests for the miner facade (repro.core.miner)."""

import pytest

from repro import (
    MinerConfig,
    QuantitativeMiner,
    mine_quantitative_rules,
)
from repro.data import (
    age_partition_edges,
    generate_credit_table,
    people_table,
)


@pytest.fixture(scope="module")
def credit_table():
    return generate_credit_table(2_000, seed=7)


@pytest.fixture(scope="module")
def credit_config():
    return MinerConfig(
        min_support=0.2,
        min_confidence=0.25,
        max_support=0.4,
        partial_completeness=3.0,
        interest_level=1.5,
    )


@pytest.fixture(scope="module")
def credit_result(credit_table, credit_config):
    return QuantitativeMiner(credit_table, credit_config).mine()


class TestOneCallApi:
    def test_keyword_overrides(self):
        result = mine_quantitative_rules(
            people_table(),
            min_support=0.4,
            min_confidence=0.5,
            max_support=0.6,
            num_partitions={"Age": age_partition_edges()},
        )
        assert result.rules

    def test_config_and_overrides_conflict(self):
        with pytest.raises(TypeError, match="not both"):
            mine_quantitative_rules(
                people_table(), MinerConfig(), min_support=0.2
            )


class TestResultInvariants:
    def test_interesting_subset_of_rules(self, credit_result):
        assert set(credit_result.interesting_rules) <= set(
            credit_result.rules
        )

    def test_interest_prunes_something_on_correlated_data(
        self, credit_result
    ):
        assert 0 < len(credit_result.interesting_rules) < len(
            credit_result.rules
        )

    def test_supports_meet_minsup(self, credit_result, credit_config):
        n = credit_result.num_records
        for count in credit_result.support_counts.values():
            assert count >= credit_config.min_support * n

    def test_confidences_meet_minconf(self, credit_result, credit_config):
        for rule in credit_result.rules:
            assert rule.confidence >= credit_config.min_confidence - 1e-12

    def test_stats_populated(self, credit_result):
        stats = credit_result.stats
        assert stats.num_records == 2_000
        assert stats.num_attributes == 7
        assert stats.num_rules == len(credit_result.rules)
        assert stats.num_interesting_rules == len(
            credit_result.interesting_rules
        )
        assert stats.num_passes >= 2
        assert stats.total_seconds > 0
        assert "frequent_itemsets" in stats.phase_seconds

    def test_realized_completeness_reported(self, credit_result):
        assert credit_result.stats.realized_completeness >= 1.0

    def test_summary_renders(self, credit_result):
        text = credit_result.stats.summary()
        assert "rules" in text
        assert "pass 2" in text

    def test_describe_rules_renders_names(self, credit_result):
        text = credit_result.describe_rules(limit=5)
        assert "=>" in text


class TestDeterminism:
    def test_same_seed_same_rules(self, credit_config):
        a = QuantitativeMiner(
            generate_credit_table(1_000, seed=3), credit_config
        ).mine()
        b = QuantitativeMiner(
            generate_credit_table(1_000, seed=3), credit_config
        ).mine()
        assert a.rules == b.rules
        assert a.interesting_rules == b.interesting_rules


class TestBackendEquivalence:
    """Section 5.2: all counting structures must produce identical output."""

    @pytest.mark.parametrize("backend", ["rtree", "direct", "auto"])
    def test_backends_equal_array(self, backend):
        table = generate_credit_table(500, seed=11)
        base = dict(
            min_support=0.25,
            min_confidence=0.3,
            max_support=0.45,
            partial_completeness=4.0,
        )
        reference = QuantitativeMiner(
            table, MinerConfig(**base, counting="array")
        ).mine()
        other = QuantitativeMiner(
            table, MinerConfig(**base, counting=backend)
        ).mine()
        assert reference.support_counts == other.support_counts
        assert reference.rules == other.rules


class TestMaxItemsetSize:
    def test_cap_respected(self, credit_table):
        config = MinerConfig(
            min_support=0.2,
            max_support=0.4,
            partial_completeness=3.0,
            max_itemset_size=2,
        )
        result = QuantitativeMiner(credit_table, config).mine()
        assert max(len(s) for s in result.support_counts) == 2

    def test_size_one_yields_no_rules(self, credit_table):
        config = MinerConfig(
            min_support=0.2,
            max_support=0.4,
            partial_completeness=3.0,
            max_itemset_size=1,
        )
        result = QuantitativeMiner(credit_table, config).mine()
        assert result.rules == []


class TestInterestPruneIntegration:
    def test_and_mode_prunes_items(self, credit_table):
        config = MinerConfig(
            min_support=0.2,
            max_support=0.9,
            partial_completeness=3.0,
            interest_level=2.0,
            interest_mode="support_and_confidence",
        )
        result = QuantitativeMiner(credit_table, config).mine()
        assert result.stats.items_pruned_by_interest > 0
        threshold = credit_table.num_records / 2.0
        for itemset in result.support_counts:
            for item in itemset:
                if result.mapper.mapping(item.attribute).is_quantitative:
                    count = result.frequent_items.support(item) * len(
                        credit_table
                    )
                    assert count <= threshold + 1e-9

"""Content fingerprints: stability, type discrimination, invalidation.

The artifact cache is only correct if fingerprints change exactly when
the content they cover changes: equal inputs must collide, different
inputs must not, and the stage-level fingerprint must ignore parameters
a stage's output does not depend on (that indifference is what makes
confidence/interest sweeps incremental) while reacting to every
parameter it does depend on.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import MinerConfig, TableMapper
from repro.core.apriori_quant import FrequentItemsetSearch
from repro.core.interest import InterestFilterStage
from repro.core.rulegen import RuleGenerationStage
from repro.engine import StageContext, Unfingerprintable, fingerprint
from repro.table import RelationalTable, TableSchema, categorical, quantitative


def build_table(values):
    schema = TableSchema(
        [quantitative("x"), categorical("c", ("a", "b"))]
    )
    return RelationalTable.from_columns(
        schema,
        [
            np.array(values, dtype=float),
            np.array([v % 2 for v in values], dtype=np.int64),
        ],
    )


class TestFingerprintFunction:
    def test_deterministic(self):
        assert fingerprint(1, "a", (2.5, None)) == fingerprint(
            1, "a", (2.5, None)
        )

    def test_type_tags_distinguish_look_alikes(self):
        # 1, 1.0, True and "1" stringify alike but are different values.
        prints = {
            fingerprint(1),
            fingerprint(1.0),
            fingerprint(True),
            fingerprint("1"),
            fingerprint(b"1"),
            fingerprint((1,)),
        }
        assert len(prints) == 6

    def test_none_differs_from_zero_and_empty(self):
        assert fingerprint(None) != fingerprint(0)
        assert fingerprint(None) != fingerprint("")
        assert fingerprint(None) != fingerprint(())

    def test_nesting_is_not_flattened(self):
        assert fingerprint((1, 2), 3) != fingerprint(1, (2, 3))
        assert fingerprint(((1,), 2)) != fingerprint((1, (2,)))

    def test_dict_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint(
            {"b": 2, "a": 1}
        )
        assert fingerprint({"a": 1, "b": 2}) != fingerprint(
            {"a": 2, "b": 1}
        )

    def test_set_order_insensitive(self):
        assert fingerprint({3, 1, 2}) == fingerprint({1, 2, 3})
        assert fingerprint({1, 2}) != fingerprint({1, 3})
        # ...but lists are sequences: order matters.
        assert fingerprint([1, 2]) != fingerprint([2, 1])

    def test_array_content_and_dtype(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        assert fingerprint(a) == fingerprint(a.copy())
        assert fingerprint(a) != fingerprint(a.astype(np.int32))
        assert fingerprint(a) != fingerprint(np.array([1, 2, 4]))
        # Same bytes, different shape.
        b = np.zeros(4, dtype=np.int64)
        assert fingerprint(b) != fingerprint(b.reshape(2, 2))

    def test_dataclass_generic_handling(self):
        @dataclasses.dataclass
        class Point:
            x: int
            y: int

        assert fingerprint(Point(1, 2)) == fingerprint(Point(1, 2))
        assert fingerprint(Point(1, 2)) != fingerprint(Point(2, 1))

    def test_fingerprint_parts_protocol(self):
        class Tagged:
            def __init__(self, tag):
                self.tag = tag

            def fingerprint_parts(self):
                return (self.tag,)

        assert fingerprint(Tagged("a")) == fingerprint(Tagged("a"))
        assert fingerprint(Tagged("a")) != fingerprint(Tagged("b"))

    def test_opaque_objects_raise(self):
        with pytest.raises(Unfingerprintable):
            fingerprint(object())
        with pytest.raises(Unfingerprintable):
            fingerprint({"key": object()})


class TestTableFingerprint:
    def test_equal_content_equal_fingerprint(self):
        assert (
            build_table([1, 2, 3, 4]).fingerprint()
            == build_table([1, 2, 3, 4]).fingerprint()
        )

    def test_content_change_changes_fingerprint(self):
        assert (
            build_table([1, 2, 3, 4]).fingerprint()
            != build_table([1, 2, 3, 5]).fingerprint()
        )

    def test_memoized(self):
        table = build_table([1, 2, 3, 4])
        assert table.fingerprint() is table.fingerprint()

    def test_mapper_delegates_to_table(self):
        table = build_table(list(range(12)))
        config = MinerConfig(min_support=0.2)
        mapper = TableMapper(table, config)
        assert mapper.fingerprint() == table.fingerprint()


def stage_key(stage, table_values, config):
    table = build_table(table_values)
    mapper = TableMapper(table, config)
    context = StageContext(artifacts={"mapper": mapper, "config": config})
    return stage.fingerprint(context)


class TestStageFingerprints:
    """The invalidation semantics the incremental sweeps rely on."""

    values = list(range(24))
    base = MinerConfig(
        min_support=0.2, min_confidence=0.5, interest_level=1.1
    )

    def test_counting_ignores_confidence_and_or_mode_interest(self):
        key = stage_key(FrequentItemsetSearch(), self.values, self.base)
        for change in (
            {"min_confidence": 0.9},
            {"interest_level": 2.0},
            {"interest_level": None},
        ):
            varied = dataclasses.replace(self.base, **change)
            assert (
                stage_key(FrequentItemsetSearch(), self.values, varied)
                == key
            ), change

    def test_counting_reacts_to_partitioning_keys(self):
        key = stage_key(FrequentItemsetSearch(), self.values, self.base)
        for change in (
            {"min_support": 0.3},
            {"partial_completeness": 2.0},
            {"max_support": 0.6},
            {"max_itemset_size": 2},
        ):
            varied = dataclasses.replace(self.base, **change)
            assert (
                stage_key(FrequentItemsetSearch(), self.values, varied)
                != key
            ), change

    def test_counting_reacts_to_and_mode_interest(self):
        # AND mode enables the Lemma 5 item prune, so the interest level
        # becomes a real input of the counting stages.
        and_mode = dataclasses.replace(
            self.base, interest_mode="support_and_confidence"
        )
        key = stage_key(FrequentItemsetSearch(), self.values, and_mode)
        varied = dataclasses.replace(and_mode, interest_level=2.0)
        assert (
            stage_key(FrequentItemsetSearch(), self.values, varied) != key
        )

    def test_counting_reacts_to_table_change(self):
        key = stage_key(FrequentItemsetSearch(), self.values, self.base)
        mutated = self.values[:-1] + [99]
        assert (
            stage_key(FrequentItemsetSearch(), mutated, self.base) != key
        )

    def test_rulegen_reacts_to_confidence_but_not_interest(self):
        key = stage_key(RuleGenerationStage(), self.values, self.base)
        conf = dataclasses.replace(self.base, min_confidence=0.9)
        assert stage_key(RuleGenerationStage(), self.values, conf) != key
        interest = dataclasses.replace(self.base, interest_level=2.0)
        assert (
            stage_key(RuleGenerationStage(), self.values, interest) == key
        )

    def test_interest_stage_reacts_to_interest_parameters(self):
        key = stage_key(InterestFilterStage(), self.values, self.base)
        for change in (
            {"interest_level": 2.0},
            {"interest_mode": "support_and_confidence"},
            {"apply_specialization_check": False},
        ):
            varied = dataclasses.replace(self.base, **change)
            assert (
                stage_key(InterestFilterStage(), self.values, varied)
                != key
            ), change

    def test_execution_layout_never_enters_the_key(self):
        key = stage_key(FrequentItemsetSearch(), self.values, self.base)
        varied = dataclasses.replace(
            self.base,
            execution={
                "executor": "parallel",
                "num_workers": 2,
                "shard_size": 3,
                "rule_block_size": 2,
            },
        )
        assert (
            stage_key(FrequentItemsetSearch(), self.values, varied) == key
        )

    def test_observability_block_never_enters_the_key(self):
        # Observability is purely operational: tracing a run must not
        # fragment the cache or miss warm artifacts from untraced runs.
        varied = dataclasses.replace(
            self.base,
            observability={
                "enabled": True,
                "trace_path": "trace.jsonl",
                "metrics_path": "metrics.json",
                "log_level": "DEBUG",
            },
        )
        for stage in (
            FrequentItemsetSearch(),
            RuleGenerationStage(),
            InterestFilterStage(),
        ):
            assert stage_key(stage, self.values, varied) == stage_key(
                stage, self.values, self.base
            ), stage.name

    def test_distinct_stages_get_distinct_keys(self):
        keys = {
            stage_key(stage, self.values, self.base)
            for stage in (
                FrequentItemsetSearch(),
                RuleGenerationStage(),
                InterestFilterStage(),
            )
        }
        assert len(keys) == 3

    def test_uncacheable_stage_has_no_key(self):
        stage = RuleGenerationStage()
        stage.cacheable = False
        assert stage_key(stage, self.values, self.base) is None

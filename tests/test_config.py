"""Unit tests for repro.core.config."""

import pytest

from repro.core import (
    SUPPORT_AND_CONFIDENCE,
    SUPPORT_OR_CONFIDENCE,
    MinerConfig,
)


class TestValidation:
    def test_defaults_valid(self):
        config = MinerConfig()
        assert config.min_support == 0.1
        assert config.interest_mode == SUPPORT_OR_CONFIDENCE

    @pytest.mark.parametrize("value", [0.0, -0.1, 1.1])
    def test_min_support_bounds(self, value):
        with pytest.raises(ValueError, match="min_support"):
            MinerConfig(min_support=value)

    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_min_confidence_bounds(self, value):
        with pytest.raises(ValueError, match="min_confidence"):
            MinerConfig(min_confidence=value)

    def test_min_confidence_zero_and_one_allowed(self):
        MinerConfig(min_confidence=0.0)
        MinerConfig(min_confidence=1.0)

    @pytest.mark.parametrize("value", [0.0, 1.5])
    def test_max_support_bounds(self, value):
        with pytest.raises(ValueError, match="max_support"):
            MinerConfig(max_support=value)

    @pytest.mark.parametrize("value", [1.0, 0.5])
    def test_completeness_must_exceed_one(self, value):
        with pytest.raises(ValueError, match="partial_completeness"):
            MinerConfig(partial_completeness=value)

    def test_negative_interest_rejected(self):
        with pytest.raises(ValueError, match="interest_level"):
            MinerConfig(interest_level=-1)

    def test_unknown_interest_mode_rejected(self):
        with pytest.raises(ValueError, match="interest_mode"):
            MinerConfig(interest_mode="maybe")

    def test_unknown_partition_method_rejected(self):
        with pytest.raises(ValueError, match="partition_method"):
            MinerConfig(partition_method="kmeans")

    def test_unknown_counting_backend_rejected(self):
        with pytest.raises(ValueError, match="counting"):
            MinerConfig(counting="gpu")

    def test_max_itemset_size_validated(self):
        with pytest.raises(ValueError):
            MinerConfig(max_itemset_size=0)
        MinerConfig(max_itemset_size=3)

    def test_max_quantitative_in_rule_validated(self):
        with pytest.raises(ValueError):
            MinerConfig(max_quantitative_in_rule=0)


class TestDerivedProperties:
    def test_interest_disabled_when_none(self):
        config = MinerConfig(interest_level=None)
        assert not config.interest_enabled
        assert config.effective_interest_level == 0.0

    def test_interest_disabled_at_zero(self):
        # R = 0 is Figure 8's "no interest measure" point.
        assert not MinerConfig(interest_level=0.0).interest_enabled

    def test_interest_enabled_for_positive_r(self):
        assert MinerConfig(interest_level=0.5).interest_enabled
        assert MinerConfig(interest_level=1.1).interest_enabled

    def test_modes_exported(self):
        MinerConfig(interest_mode=SUPPORT_AND_CONFIDENCE)
        MinerConfig(interest_mode=SUPPORT_OR_CONFIDENCE)


class TestLemma1Adjustment:
    def test_disabled_by_default(self):
        config = MinerConfig(min_confidence=0.5)
        assert config.effective_min_confidence == 0.5

    def test_divides_by_completeness(self):
        config = MinerConfig(
            min_confidence=0.6,
            partial_completeness=2.0,
            lemma1_confidence_adjustment=True,
        )
        assert config.effective_min_confidence == pytest.approx(0.3)

    def test_miner_generates_extra_low_confidence_rules(self):
        from repro.core import QuantitativeMiner
        from repro.data import generate_credit_table

        table = generate_credit_table(1_000, seed=8)
        base = dict(
            min_support=0.2,
            min_confidence=0.5,
            max_support=0.45,
            partial_completeness=3.0,
            max_quantitative_in_rule=2,
            max_itemset_size=2,
        )
        plain = QuantitativeMiner(table, MinerConfig(**base)).mine()
        adjusted = QuantitativeMiner(
            table, MinerConfig(**base, lemma1_confidence_adjustment=True)
        ).mine()
        assert set(plain.rules) <= set(adjusted.rules)
        assert len(adjusted.rules) > len(plain.rules)
        # The extra rules sit between minconf/K and minconf.
        extra = set(adjusted.rules) - set(plain.rules)
        for rule in extra:
            assert 0.5 / 3.0 - 1e-9 <= rule.confidence < 0.5


class TestObsConfigBlock:
    def test_disabled_by_default(self):
        from repro.core import ObsConfig

        config = MinerConfig()
        assert config.observability.enabled is False
        assert config.observability.build() is None
        assert isinstance(config.observability, ObsConfig)

    def test_any_export_target_enables(self):
        from repro.core import ObsConfig

        assert ObsConfig(trace_path="t.jsonl").enabled is True
        assert ObsConfig(metrics_path="m.json").enabled is True
        assert ObsConfig().enabled is False
        # An explicit False wins over the paths.
        off = ObsConfig(enabled=False, trace_path="t.jsonl")
        assert off.enabled is False
        assert off.build() is None

    def test_chrome_path_derived_from_trace_path(self):
        from repro.core import ObsConfig

        assert (
            ObsConfig(trace_path="run.jsonl").chrome_trace_path
            == "run.chrome.json"
        )
        assert (
            ObsConfig(trace_path="run.json").chrome_trace_path
            == "run.chrome.json"
        )
        explicit = ObsConfig(
            trace_path="run.jsonl", chrome_trace_path="other.json"
        )
        assert explicit.chrome_trace_path == "other.json"
        assert ObsConfig().chrome_trace_path is None

    def test_bad_log_level_rejected(self):
        from repro.core import ObsConfig

        with pytest.raises(ValueError):
            ObsConfig(log_level="CHATTY")
        ObsConfig(log_level="debug")  # case-insensitive

    def test_dict_normalization_and_type_check(self):
        config = MinerConfig(observability={"enabled": True})
        assert config.observability.enabled is True
        with pytest.raises(TypeError):
            MinerConfig(observability="loud")

    def test_build_returns_live_bundle(self, tmp_path):
        from repro.core import ObsConfig
        from repro.obs import Observability

        obs = ObsConfig(
            trace_path=str(tmp_path / "t.jsonl"),
            metrics_path=str(tmp_path / "m.json"),
        ).build()
        assert isinstance(obs, Observability)
        assert obs.tracer.enabled
        assert obs.metrics.enabled
        assert obs.chrome_trace_path == str(tmp_path / "t.chrome.json")

    def test_flat_overrides_fold_into_block(self):
        from repro.core.miner import _resolve_config

        config = _resolve_config(
            None,
            {
                "min_support": 0.2,
                "trace_path": "run.jsonl",
                "log_level": "INFO",
            },
        )
        assert config.observability.trace_path == "run.jsonl"
        assert config.observability.log_level == "INFO"
        assert config.observability.enabled is True
        assert config.min_support == 0.2


class TestDictContract:
    """MinerConfig.to_dict()/from_dict(): the serving-layer contract."""

    def json_round_trip(self, payload):
        import json

        return json.loads(json.dumps(payload))

    def test_defaults_round_trip(self):
        config = MinerConfig()
        data = self.json_round_trip(config.to_dict())
        assert MinerConfig.from_dict(data) == config

    def test_tuned_config_round_trips(self):
        from repro.core import (
            CacheConfig,
            ExecutionConfig,
            ObsConfig,
            Taxonomy,
        )

        config = MinerConfig(
            min_support=0.2,
            min_confidence=0.6,
            max_support=0.5,
            partial_completeness=2.0,
            interest_level=1.1,
            interest_mode=SUPPORT_AND_CONFIDENCE,
            counting="rtree",
            num_partitions={"age": 7},
            taxonomies={
                "item": Taxonomy(
                    {"shirt": "clothes", "jacket": "outerwear",
                     "outerwear": "clothes"}
                )
            },
            execution=ExecutionConfig(executor="parallel", num_workers=2),
            cache=CacheConfig(enabled=False),
            observability=ObsConfig(enabled=True),
        )
        data = self.json_round_trip(config.to_dict())
        rebuilt = MinerConfig.from_dict(data)
        assert rebuilt == config
        assert rebuilt.taxonomies["item"] == config.taxonomies["item"]

    def test_empty_dict_is_defaults(self):
        assert MinerConfig.from_dict({}) == MinerConfig()

    def test_unknown_keys_rejected_loudly(self):
        with pytest.raises(ValueError, match="unknown"):
            MinerConfig.from_dict({"min_suport": 0.1})

    def test_invalid_values_still_validated(self):
        with pytest.raises(ValueError):
            MinerConfig.from_dict({"min_support": 2.0})

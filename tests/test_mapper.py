"""Unit tests for repro.core.mapper (Step 2 of the decomposition)."""

import numpy as np
import pytest

from repro.core import Item, MinerConfig, TableMapper
from repro.data import age_partition_edges, people_table


@pytest.fixture
def table():
    return people_table()


def make_mapper(table, **overrides):
    defaults = dict(min_support=0.4, max_support=0.6)
    defaults.update(overrides)
    return TableMapper(table, MinerConfig(**defaults))


class TestEncoding:
    def test_categorical_column_passthrough(self, table):
        mapper = make_mapper(table)
        np.testing.assert_array_equal(
            mapper.column(1), table.column("Married")
        )

    def test_few_valued_quantitative_maps_to_ranks(self, table):
        mapper = make_mapper(table)
        # NumCars has 3 distinct values -> unpartitioned ranks 0..2.
        assert mapper.cardinality(2) == 3
        np.testing.assert_array_equal(mapper.column(2), [1, 1, 0, 2, 2])

    def test_explicit_edges_reproduce_paper_partitioning(self, table):
        mapper = make_mapper(
            table, num_partitions={"Age": age_partition_edges()}
        )
        # Figure 3e: ages 23,25,29,34,38 -> intervals 1,2,2,3,4 (1-based);
        # our codes are 0-based.
        np.testing.assert_array_equal(mapper.column(0), [0, 1, 1, 2, 3])
        assert mapper.cardinality(0) == 4

    def test_integer_override_partitions(self, table):
        mapper = make_mapper(table, num_partitions={"Age": 2})
        assert mapper.cardinality(0) == 2

    def test_global_int_override(self, table):
        mapper = make_mapper(table, num_partitions=2)
        assert mapper.cardinality(0) == 2

    def test_equation2_drives_default_interval_count(self, table):
        # n=2 quantitative attrs, minsup 0.4, K=1.5 -> 2*2/(0.4*0.5) = 20,
        # but Age only has 5 distinct values -> value mapping instead.
        mapper = make_mapper(table, partial_completeness=1.5)
        assert mapper.cardinality(0) == 5
        assert not mapper.mapping(0).is_partitioned

    def test_matrix_shape(self, table):
        mapper = make_mapper(table)
        assert mapper.matrix().shape == (5, 3)

    def test_bad_override_type_rejected(self, table):
        with pytest.raises(TypeError, match="num_partitions"):
            make_mapper(table, num_partitions="six")

    def test_bad_edges_rejected(self, table):
        with pytest.raises(ValueError, match="strictly increasing"):
            make_mapper(table, num_partitions={"Age": (30.0, 20.0)})

    def test_max_quantitative_in_rule_coarsens(self, table):
        # With n'=1 the formula needs half the intervals of n=2.
        import numpy as np

        rng = np.random.default_rng(0)
        from repro.table import (
            RelationalTable,
            TableSchema,
            quantitative,
        )

        schema = TableSchema([quantitative("a"), quantitative("b")])
        big = RelationalTable.from_columns(
            schema, [rng.normal(size=500), rng.normal(size=500)]
        )
        full = TableMapper(
            big, MinerConfig(min_support=0.2, partial_completeness=1.5)
        )
        capped = TableMapper(
            big,
            MinerConfig(
                min_support=0.2,
                partial_completeness=1.5,
                max_quantitative_in_rule=1,
            ),
        )
        assert capped.cardinality(0) < full.cardinality(0)


class TestDecoding:
    def test_describe_categorical_item(self, table):
        mapper = make_mapper(table)
        assert mapper.describe_item(Item(1, 0, 0)) == "<Married: Yes>"

    def test_describe_partitioned_range(self, table):
        mapper = make_mapper(
            table, num_partitions={"Age": age_partition_edges()}
        )
        assert mapper.describe_item(Item(0, 2, 3)) == "<Age: [30, 40]>"
        assert mapper.describe_item(Item(0, 0, 1)) == "<Age: [20, 30)>"

    def test_describe_unpartitioned_value_and_range(self, table):
        mapper = make_mapper(table)
        assert mapper.describe_item(Item(2, 2, 2)) == "<NumCars: 2>"
        assert mapper.describe_item(Item(2, 0, 1)) == "<NumCars: 0..1>"

    def test_describe_itemset(self, table):
        mapper = make_mapper(table)
        text = mapper.describe_itemset((Item(1, 0, 0), Item(2, 2, 2)))
        assert text == "<Married: Yes> and <NumCars: 2>"

    def test_item_from_names(self, table):
        mapper = make_mapper(table)
        assert mapper.item_from_names("NumCars", 0, 1) == Item(2, 0, 1)

    def test_item_from_names_out_of_range(self, table):
        mapper = make_mapper(table)
        with pytest.raises(ValueError, match="out of bounds"):
            mapper.item_from_names("NumCars", 0, 9)

    def test_mapping_lookup_by_name(self, table):
        mapper = make_mapper(table)
        assert mapper.mapping("Married").labels == ("Yes", "No")

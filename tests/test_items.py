"""Unit tests for repro.core.items."""

import pytest

from repro.core import (
    Item,
    attributes_of,
    is_generalization,
    is_specialization,
    is_strict_generalization,
    itemset_union,
    make_item,
    make_itemset,
    subtract_specialization,
)


class TestItem:
    def test_make_item_defaults_hi(self):
        assert make_item(0, 3) == Item(0, 3, 3)

    def test_make_item_range(self):
        assert make_item(1, 2, 5) == Item(1, 2, 5)

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError, match="inverted"):
            make_item(0, 5, 2)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            make_item(0, -1)

    def test_width(self):
        assert Item(0, 2, 5).width == 4
        assert Item(0, 3, 3).width == 1

    def test_generalizes(self):
        assert Item(0, 1, 5).generalizes(Item(0, 2, 4))
        assert Item(0, 1, 5).generalizes(Item(0, 1, 5))  # non-strict
        assert not Item(0, 2, 4).generalizes(Item(0, 1, 5))
        assert not Item(1, 1, 5).generalizes(Item(0, 2, 4))  # attr differs

    def test_items_sort_by_attribute_first(self):
        assert sorted([Item(1, 0, 0), Item(0, 9, 9)]) == [
            Item(0, 9, 9),
            Item(1, 0, 0),
        ]

    def test_str(self):
        assert str(Item(0, 1, 1)) == "<0: 1>"
        assert str(Item(0, 1, 4)) == "<0: 1..4>"


class TestItemset:
    def test_make_itemset_sorts(self):
        s = make_itemset([Item(2, 0, 1), Item(0, 3, 3)])
        assert attributes_of(s) == (0, 2)

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_itemset([Item(0, 1, 1), Item(0, 2, 2)])

    def test_union(self):
        x = make_itemset([Item(0, 1, 2)])
        y = make_itemset([Item(1, 0, 0)])
        assert attributes_of(itemset_union(x, y)) == (0, 1)

    def test_union_overlapping_attributes_rejected(self):
        x = make_itemset([Item(0, 1, 2)])
        with pytest.raises(ValueError, match="duplicate"):
            itemset_union(x, x)


class TestGeneralization:
    def setup_method(self):
        # The paper's example: {<Age 30..39>, <Married Yes>} generalizes
        # {<Age 30..35>, <Married Yes>}.
        self.general = make_itemset([Item(0, 30, 39), Item(1, 1, 1)])
        self.specific = make_itemset([Item(0, 30, 35), Item(1, 1, 1)])

    def test_paper_example(self):
        assert is_generalization(self.general, self.specific)
        assert is_specialization(self.specific, self.general)

    def test_not_generalization_when_attrs_differ(self):
        other = make_itemset([Item(0, 30, 39), Item(2, 1, 1)])
        assert not is_generalization(other, self.specific)

    def test_not_generalization_when_sizes_differ(self):
        shorter = make_itemset([Item(0, 30, 39)])
        assert not is_generalization(shorter, self.specific)

    def test_self_generalization_non_strict(self):
        assert is_generalization(self.general, self.general)
        assert not is_strict_generalization(self.general, self.general)

    def test_strict_generalization(self):
        assert is_strict_generalization(self.general, self.specific)
        assert not is_strict_generalization(self.specific, self.general)

    def test_partial_order_antisymmetry(self):
        a = make_itemset([Item(0, 1, 5)])
        b = make_itemset([Item(0, 2, 4)])
        assert is_generalization(a, b)
        assert not is_generalization(b, a)


class TestSubtractSpecialization:
    def test_right_remainder(self):
        x = make_itemset([Item(0, 0, 9)])
        spec = make_itemset([Item(0, 0, 4)])
        assert subtract_specialization(x, spec) == make_itemset(
            [Item(0, 5, 9)]
        )

    def test_left_remainder(self):
        x = make_itemset([Item(0, 0, 9)])
        spec = make_itemset([Item(0, 5, 9)])
        assert subtract_specialization(x, spec) == make_itemset(
            [Item(0, 0, 4)]
        )

    def test_interior_specialization_not_expressible(self):
        x = make_itemset([Item(0, 0, 9)])
        spec = make_itemset([Item(0, 3, 6)])
        assert subtract_specialization(x, spec) is None

    def test_two_attribute_narrowing_not_expressible(self):
        x = make_itemset([Item(0, 0, 9), Item(1, 0, 9)])
        spec = make_itemset([Item(0, 0, 4), Item(1, 0, 4)])
        assert subtract_specialization(x, spec) is None

    def test_one_attribute_narrowed_others_equal(self):
        x = make_itemset([Item(0, 0, 9), Item(1, 2, 2)])
        spec = make_itemset([Item(0, 0, 4), Item(1, 2, 2)])
        diff = subtract_specialization(x, spec)
        assert diff == make_itemset([Item(0, 5, 9), Item(1, 2, 2)])

    def test_identical_itemsets_yield_none(self):
        x = make_itemset([Item(0, 0, 9)])
        assert subtract_specialization(x, x) is None

    def test_non_specialization_yields_none(self):
        x = make_itemset([Item(0, 0, 4)])
        wider = make_itemset([Item(0, 0, 9)])
        assert subtract_specialization(x, wider) is None

    def test_mismatched_attributes_yield_none(self):
        x = make_itemset([Item(0, 0, 9)])
        other = make_itemset([Item(1, 0, 4)])
        assert subtract_specialization(x, other) is None

    def test_figure6_decoy(self):
        # Decoy = <x: 3..5>; Interesting = <x: 5..5> shares the right
        # endpoint, so the remainder <x: 3..4> ("Boring") is expressible
        # and will be tested by the final interest measure.
        decoy = make_itemset([Item(0, 3, 5), Item(1, 0, 0)])
        interesting = make_itemset([Item(0, 5, 5), Item(1, 0, 0)])
        diff = subtract_specialization(decoy, interesting)
        assert diff == make_itemset([Item(0, 3, 4), Item(1, 0, 0)])

"""Smoke tests: every shipped example runs to completion.

The examples are the library's front door; each must execute end to end
on a trimmed problem size and print the deliverable it promises.
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=180):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "<Age: [30, 40]> and <Married: Yes> => <NumCars: 2>" in out
        assert "conf=100.0%" in out

    def test_credit_risk(self):
        out = run_example("credit_risk.py", "2000")
        assert "interesting" in out.lower()
        assert "=>" in out

    def test_census_demographics(self):
        out = run_example("census_demographics.py", "4000")
        assert "rules" in out
        assert "=>" in out

    def test_interest_pruning_demo(self):
        out = run_example("interest_pruning_demo.py")
        assert "tentative measure calls the decoy interesting: True" in out
        assert "final measure calls the decoy interesting:     False" in out
        assert "final measure keeps the genuine spike:         True" in out

    def test_partitioning_tradeoffs(self):
        out = run_example("partitioning_tradeoffs.py", "1500")
        assert "K=1.5: 40 intervals" in out
        assert "interesting" in out

    def test_async_sweep(self):
        out = run_example("async_sweep.py", "2000")
        assert "single async run over 2000 records" in out
        assert "stage frequent_items" in out
        assert "confidence sweep (3 concurrent jobs, shared cache):" in out
        assert "jobs submitted:      3" in out
        assert "completed:         3" in out

    def test_retail_taxonomy(self):
        out = run_example("retail_taxonomy.py")
        assert "outerwear" in out
        assert "interesting" in out
        assert "exported" in out

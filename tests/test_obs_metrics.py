"""The metrics registry: instrument semantics and deterministic snapshots."""

import threading

import pytest

from repro.obs import NULL_METRICS, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("cache.hit")
        counter.increment()
        counter.increment(4)
        assert registry.counter("cache.hit").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").increment(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("run.records").set(10)
        registry.gauge("run.records").set(30)
        assert registry.gauge("run.records").value == 30

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("stage_seconds.pass_2")
        histogram.observe(2.0)
        histogram.observe_many([1.0, 4.0])
        assert histogram.count == 3
        assert histogram.total == 7.0
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.mean == pytest.approx(7.0 / 3)

    def test_empty_histogram_mean_is_none(self):
        assert MetricsRegistry().histogram("h").mean is None

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("n") is registry.counter("n")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(TypeError):
            registry.gauge("n")
        with pytest.raises(TypeError):
            registry.histogram("n")


class TestSnapshot:
    def test_structure_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("z.count").increment(2)
        registry.counter("a.count").increment(1)
        registry.gauge("m.gauge").set(1.5)
        registry.histogram("h.hist").observe(3.0)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert list(snapshot["counters"]) == ["a.count", "z.count"]
        assert snapshot["gauges"] == {"m.gauge": 1.5}
        assert snapshot["histograms"]["h.hist"] == {
            "count": 1, "sum": 3.0, "min": 3.0, "max": 3.0, "mean": 3.0,
        }

    def test_deterministic_for_fixed_writes(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("stages.executed").increment(5)
            registry.gauge("run.rules").set(12)
            registry.histogram("shard_seconds.pass_2").observe_many(
                [0.5, 0.25]
            )
            return registry.snapshot()

        assert build() == build()

    def test_snapshot_is_a_point_in_time_copy(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        before = registry.snapshot()
        registry.counter("c").increment()
        assert before["counters"]["c"] == 1
        assert registry.snapshot()["counters"]["c"] == 2


class TestConcurrency:
    def test_cross_thread_counts_exact(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.counter("n").increment()
                registry.histogram("h").observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("n").value == 4000
        assert registry.histogram("h").count == 4000
        assert registry.histogram("h").total == 4000.0


class TestNullMetrics:
    def test_full_surface_is_noop(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("c").increment(5)
        NULL_METRICS.gauge("g").set(1.0)
        NULL_METRICS.histogram("h").observe(2.0)
        NULL_METRICS.histogram("h").observe_many([1.0, 2.0])
        assert NULL_METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_shared_instrument(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.histogram("b")

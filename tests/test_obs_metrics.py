"""The metrics registry: instrument semantics and deterministic snapshots."""

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
    render_prometheus,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("cache.hit")
        counter.increment()
        counter.increment(4)
        assert registry.counter("cache.hit").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").increment(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("run.records").set(10)
        registry.gauge("run.records").set(30)
        assert registry.gauge("run.records").value == 30

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("stage_seconds.pass_2")
        histogram.observe(2.0)
        histogram.observe_many([1.0, 4.0])
        assert histogram.count == 3
        assert histogram.total == 7.0
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.mean == pytest.approx(7.0 / 3)

    def test_empty_histogram_mean_is_none(self):
        assert MetricsRegistry().histogram("h").mean is None

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("n") is registry.counter("n")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(TypeError):
            registry.gauge("n")
        with pytest.raises(TypeError):
            registry.histogram("n")


class TestLabels:
    def test_label_sets_are_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("remote.retries", labels={"worker": "a:1"})
        registry.counter(
            "remote.retries", labels={"worker": "b:2"}
        ).increment(3)
        assert (
            registry.counter(
                "remote.retries", labels={"worker": "a:1"}
            ).value
            == 0
        )
        assert (
            registry.counter(
                "remote.retries", labels={"worker": "b:2"}
            ).value
            == 3
        )

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels={"x": "1", "y": "2"})
        b = registry.counter("c", labels={"y": "2", "x": "1"})
        assert a is b

    def test_unlabeled_and_labeled_coexist(self):
        registry = MetricsRegistry()
        registry.counter("remote.retries").increment()
        registry.counter(
            "remote.retries", labels={"worker": "a:1"}
        ).increment(2)
        counters = registry.snapshot()["counters"]
        assert counters["remote.retries"] == 1
        assert counters['remote.retries{worker="a:1"}'] == 2

    def test_kind_mismatch_across_label_sets_raises(self):
        registry = MetricsRegistry()
        registry.counter("n", labels={"worker": "a:1"})
        with pytest.raises(TypeError):
            registry.histogram("n", labels={"worker": "b:2"})

    def test_labeled_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"worker": "a:1"}).increment(2)
        registry.gauge("g").set(1.5)
        registry.histogram(
            "h", labels={"route": "/metrics"}, buckets=(0.1, 1.0)
        ).observe(0.5)
        labeled = registry.labeled_snapshot()
        assert labeled["counters"] == [
            {"name": "c", "labels": {"worker": "a:1"}, "value": 2}
        ]
        assert labeled["gauges"] == [
            {"name": "g", "labels": {}, "value": 1.5}
        ]
        (hist,) = labeled["histograms"]
        assert hist["name"] == "h"
        assert hist["labels"] == {"route": "/metrics"}
        assert hist["count"] == 1
        assert hist["buckets"] == {
            "bounds": [0.1, 1.0], "counts": [0, 1, 0],
        }


class TestBuckets:
    def test_bucket_counts_use_le_semantics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 1.0, 5.0, 50.0):
            histogram.observe(value)
        # One overflow bucket beyond the last boundary; a value equal
        # to a boundary lands in that boundary's bucket (le).
        assert histogram.bucket_counts == [2, 2, 1, 1]

    def test_default_latency_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(1.0, 0.5))

    def test_conflicting_buckets_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(0.1, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(0.2, 2.0))

    def test_flat_snapshot_carries_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(0.1,)).observe(0.05)
        entry = registry.snapshot()["histograms"]["h"]
        assert entry["buckets"] == {"bounds": [0.1], "counts": [1, 0]}


class TestPrometheus:
    def test_rendering_covers_all_sections(self):
        registry = MetricsRegistry()
        registry.counter(
            "http.requests.get", labels={"route": "/metrics"}
        ).increment(2)
        registry.gauge("jobs.running").set(1)
        registry.histogram(
            "http.request_seconds",
            labels={"method": "GET", "route": "/metrics"},
            buckets=(0.1, 1.0),
        ).observe(0.5)
        text = render_prometheus(registry.labeled_snapshot())
        assert "# TYPE http_requests_get counter" in text
        assert 'http_requests_get{route="/metrics"} 2' in text
        assert "# TYPE jobs_running gauge" in text
        assert "# TYPE http_request_seconds histogram" in text
        assert (
            'http_request_seconds_bucket'
            '{method="GET",route="/metrics",le="1.0"} 1' in text
        )
        assert (
            'http_request_seconds_bucket'
            '{method="GET",route="/metrics",le="+Inf"} 1' in text
        )
        assert (
            'http_request_seconds_count'
            '{method="GET",route="/metrics"} 1' in text
        )
        assert text.endswith("\n")

    def test_buckets_render_cumulatively(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = render_prometheus(registry.labeled_snapshot())
        assert 'h_bucket{le="0.1"} 1' in text
        assert 'h_bucket{le="1.0"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"k": 'a"b\\c\nd'}).increment()
        text = render_prometheus(registry.labeled_snapshot())
        assert 'c{k="a\\"b\\\\c\\nd"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry().labeled_snapshot()) == ""


class TestSnapshot:
    def test_structure_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("z.count").increment(2)
        registry.counter("a.count").increment(1)
        registry.gauge("m.gauge").set(1.5)
        registry.histogram("h.hist").observe(3.0)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert list(snapshot["counters"]) == ["a.count", "z.count"]
        assert snapshot["gauges"] == {"m.gauge": 1.5}
        assert snapshot["histograms"]["h.hist"] == {
            "count": 1, "sum": 3.0, "min": 3.0, "max": 3.0, "mean": 3.0,
        }

    def test_deterministic_for_fixed_writes(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("stages.executed").increment(5)
            registry.gauge("run.rules").set(12)
            registry.histogram("shard_seconds.pass_2").observe_many(
                [0.5, 0.25]
            )
            return registry.snapshot()

        assert build() == build()

    def test_snapshot_is_a_point_in_time_copy(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        before = registry.snapshot()
        registry.counter("c").increment()
        assert before["counters"]["c"] == 1
        assert registry.snapshot()["counters"]["c"] == 2


class TestConcurrency:
    def test_cross_thread_counts_exact(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.counter("n").increment()
                registry.histogram("h").observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("n").value == 4000
        assert registry.histogram("h").count == 4000
        assert registry.histogram("h").total == 4000.0


class TestNullMetrics:
    def test_full_surface_is_noop(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("c").increment(5)
        NULL_METRICS.gauge("g").set(1.0)
        NULL_METRICS.histogram("h").observe(2.0)
        NULL_METRICS.histogram("h").observe_many([1.0, 2.0])
        assert NULL_METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_accepts_labels_and_buckets(self):
        NULL_METRICS.counter("c", labels={"worker": "a:1"}).increment()
        NULL_METRICS.gauge("g", labels={"x": "y"}).set(1.0)
        NULL_METRICS.histogram(
            "h", labels={"route": "/metrics"},
            buckets=DEFAULT_LATENCY_BUCKETS,
        ).observe(0.5)
        assert NULL_METRICS.labeled_snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
        }

    def test_shared_instrument(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.histogram("b")

"""Unit tests for repro.table.table (RelationalTable)."""

import numpy as np
import pytest

from repro.table import (
    RelationalTable,
    TableSchema,
    categorical,
    quantitative,
)


@pytest.fixture
def schema():
    return TableSchema(
        [
            quantitative("age"),
            categorical("married", ("Yes", "No")),
        ]
    )


@pytest.fixture
def table(schema):
    return RelationalTable.from_records(
        schema,
        [(23, "No"), (25, "Yes"), (29, "No"), (34, "Yes"), (38, "Yes")],
    )


class TestConstruction:
    def test_from_records_encodes_categoricals(self, table):
        np.testing.assert_array_equal(
            table.column("married"), [1, 0, 1, 0, 0]
        )

    def test_from_records_quantitative_is_float(self, table):
        assert table.column("age").dtype == np.float64

    def test_from_records_infers_missing_domain(self):
        schema = TableSchema([categorical("color")])
        t = RelationalTable.from_records(
            schema, [("red",), ("blue",), ("red",)]
        )
        assert t.schema.attribute("color").values == ("red", "blue")
        np.testing.assert_array_equal(t.column("color"), [0, 1, 0])

    def test_from_records_unknown_value_rejected(self, schema):
        with pytest.raises(ValueError, match="not in domain"):
            RelationalTable.from_records(schema, [(23, "Maybe")])

    def test_from_records_wrong_arity_rejected(self, schema):
        with pytest.raises(ValueError, match="fields"):
            RelationalTable.from_records(schema, [(23,)])

    def test_from_columns_validates_codes(self, schema):
        with pytest.raises(ValueError, match="out of range"):
            RelationalTable.from_columns(
                schema, [np.array([23.0]), np.array([7])]
            )

    def test_mismatched_column_lengths_rejected(self, schema):
        with pytest.raises(ValueError, match="differing lengths"):
            RelationalTable(schema, [np.zeros(3), np.zeros(4)])

    def test_wrong_column_count_rejected(self, schema):
        with pytest.raises(ValueError, match="columns"):
            RelationalTable(schema, [np.zeros(3)])

    def test_empty_table(self, schema):
        t = RelationalTable.from_records(schema, [])
        assert t.num_records == 0
        assert len(t) == 0


class TestAccessors:
    def test_num_records(self, table):
        assert table.num_records == 5

    def test_record_decodes(self, table):
        assert table.record(1) == (25.0, "Yes")

    def test_decode(self, table):
        assert table.decode("married", 0) == "Yes"

    def test_decode_quantitative_raises(self, table):
        with pytest.raises(TypeError, match="not categorical"):
            table.decode("age", 0)

    def test_head(self, table):
        assert table.head(2) == [(23.0, "No"), (25.0, "Yes")]

    def test_column_by_index_and_name_agree(self, table):
        np.testing.assert_array_equal(table.column(0), table.column("age"))

    def test_take(self, table):
        small = table.take(2)
        assert small.num_records == 2
        assert small.record(0) == table.record(0)

    def test_take_beyond_size_clamps(self, table):
        assert table.take(100).num_records == 5

    def test_take_negative_rejected(self, table):
        with pytest.raises(ValueError):
            table.take(-1)

    def test_sample_deterministic_under_seed(self, table):
        a = table.sample(3, seed=7)
        b = table.sample(3, seed=7)
        np.testing.assert_array_equal(a.column("age"), b.column("age"))

    def test_sample_too_large_rejected(self, table):
        with pytest.raises(ValueError, match="cannot sample"):
            table.sample(6)

    def test_repr(self, table):
        assert "5 records" in repr(table)


class TestSummaries:
    def test_quantitative_summary(self, table):
        summary = table.column_summary("age")
        assert summary["kind"] == "quantitative"
        assert summary["count"] == 5
        assert summary["distinct"] == 5
        assert summary["min"] == 23.0
        assert summary["max"] == 38.0
        assert summary["median"] == 29.0

    def test_categorical_summary(self, table):
        summary = table.column_summary("married")
        assert summary["kind"] == "categorical"
        assert summary["values"] == {"Yes": 3, "No": 2}

    def test_empty_quantitative_summary(self, schema):
        empty = RelationalTable.from_records(schema, [])
        summary = empty.column_summary("age")
        assert summary["count"] == 0

    def test_describe_renders_all_columns(self, table):
        text = table.describe()
        assert "5 records" in text
        assert "age (Q)" in text
        assert "married (C)" in text
        assert "Yes=3" in text

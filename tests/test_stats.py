"""Unit tests for repro.core.stats."""

import pytest

from repro.core import MiningStats, PassStats


class TestMiningStats:
    def make(self):
        stats = MiningStats(num_records=100, num_attributes=3)
        stats.passes = [
            PassStats(size=1, num_candidates=10, num_frequent=8),
            PassStats(size=2, num_candidates=20, num_frequent=5),
        ]
        stats.num_rules = 40
        stats.num_interesting_rules = 10
        return stats

    def test_num_passes(self):
        assert self.make().num_passes == 2

    def test_total_candidates(self):
        assert self.make().total_candidates == 30

    def test_fraction_rules_interesting(self):
        assert self.make().fraction_rules_interesting == pytest.approx(
            0.25
        )

    def test_fraction_zero_when_no_rules(self):
        assert MiningStats().fraction_rules_interesting == 0.0

    def test_summary_includes_passes_and_counts(self):
        text = self.make().summary()
        assert "pass 1: 10 candidates -> 8 frequent" in text
        assert "rules:               40" in text
        assert "interesting rules:   10" in text

    def test_summary_with_completeness(self):
        stats = self.make()
        stats.realized_completeness = 2.345
        assert "realized K:          2.345" in stats.summary()

"""Unit tests for repro.core.stats."""

import pytest

from repro.core import MiningStats, PassStats


class TestMiningStats:
    def make(self):
        stats = MiningStats(num_records=100, num_attributes=3)
        stats.passes = [
            PassStats(size=1, num_candidates=10, num_frequent=8),
            PassStats(size=2, num_candidates=20, num_frequent=5),
        ]
        stats.num_rules = 40
        stats.num_interesting_rules = 10
        return stats

    def test_num_passes(self):
        assert self.make().num_passes == 2

    def test_total_candidates(self):
        assert self.make().total_candidates == 30

    def test_fraction_rules_interesting(self):
        assert self.make().fraction_rules_interesting == pytest.approx(
            0.25
        )

    def test_fraction_zero_when_no_rules(self):
        assert MiningStats().fraction_rules_interesting == 0.0

    def test_summary_includes_passes_and_counts(self):
        text = self.make().summary()
        assert "pass 1: 10 candidates -> 8 frequent" in text
        assert "rules:               40" in text
        assert "interesting rules:   10" in text

    def test_summary_with_completeness(self):
        stats = self.make()
        stats.realized_completeness = 2.345
        assert "realized K:          2.345" in stats.summary()


class TestStatsDictContracts:
    """to_dict()/from_dict() must survive a JSON round trip exactly."""

    def make_mining_stats(self):
        from repro.core.stats import ExecutionStats

        stats = MiningStats(num_records=100, num_attributes=3)
        stats.passes = [
            PassStats(size=1, num_candidates=10, num_frequent=8),
            PassStats(size=2, num_candidates=20, num_frequent=5),
        ]
        stats.num_rules = 40
        stats.num_interesting_rules = 10
        stats.realized_completeness = 2.5
        stats.execution = ExecutionStats(
            executor="parallel", num_workers=4, cache_hits=3
        )
        return stats

    def json_round_trip(self, payload):
        import json

        return json.loads(json.dumps(payload))

    def test_pass_stats_round_trip(self):
        original = PassStats(size=2, num_candidates=7, num_frequent=3)
        data = self.json_round_trip(original.to_dict())
        assert PassStats.from_dict(data) == original

    def test_mining_stats_round_trip(self):
        original = self.make_mining_stats()
        data = self.json_round_trip(original.to_dict())
        rebuilt = MiningStats.from_dict(data)
        assert rebuilt == original
        assert rebuilt.execution == original.execution
        assert rebuilt.passes == original.passes

    def test_mining_stats_without_execution(self):
        original = MiningStats(num_records=5)
        data = self.json_round_trip(original.to_dict())
        assert data["execution"] is None
        assert MiningStats.from_dict(data) == original

    def test_job_stats_round_trip(self):
        from repro.core.stats import JobStats

        original = JobStats(
            job_id="j1",
            status="timed_out",
            seconds=1.25,
            num_rules=7,
            timeout=30.0,
            cancel_reason="exceeded 30s wall-clock budget",
        )
        data = self.json_round_trip(original.to_dict())
        assert JobStats.from_dict(data) == original

    def test_runner_stats_round_trip(self):
        from repro.core.stats import JobStats, RunnerStats

        original = RunnerStats(submitted=3, completed=2, failed=1)
        original.record(JobStats(job_id="a", status="completed"))
        original.record(JobStats(job_id="b", status="failed"))
        data = self.json_round_trip(original.to_dict())
        rebuilt = RunnerStats.from_dict(data)
        assert rebuilt == original
        assert [j.job_id for j in rebuilt.jobs] == ["a", "b"]

    def test_unknown_keys_tolerated_for_forward_compat(self):
        data = self.json_round_trip(self.make_mining_stats().to_dict())
        data["added_in_a_future_version"] = 1
        data["passes"][0]["also_new"] = 2
        rebuilt = MiningStats.from_dict(data)
        assert rebuilt.num_rules == 40

"""Goal-directed (``target=``) mining: exact output, cheaper counting.

The contract (Apriori_Goal-style pruning): a ``target=attr`` run emits
exactly the rules of a full mine whose consequent is the single item
over ``attr`` — bit-identical, interest filter included — while
counting strictly fewer candidates on a realistic table, because
candidates that cannot produce a target-concluding rule are pruned
before they are ever counted.
"""

import pytest

from repro.core import MinerConfig, QuantitativeMiner, mine_quantitative_rules
from repro.data import generate_credit_table
from repro.rules import filter_rules_to_target

CONFIG = dict(
    min_support=0.1,
    min_confidence=0.4,
    max_support=0.45,
    num_partitions=8,
    interest_level=1.1,
)


@pytest.fixture(scope="module")
def credit_table():
    return generate_credit_table(1000, seed=11)


@pytest.fixture(scope="module")
def full_result(credit_table):
    return mine_quantitative_rules(credit_table, **CONFIG)


class TestGoalDirectedEquivalence:
    @pytest.mark.parametrize(
        "target", ["employee_category", "monthly_income", "marital_status"]
    )
    def test_rules_equal_filtered_full_mine(
        self, credit_table, full_result, target
    ):
        goal = mine_quantitative_rules(
            credit_table, target=target, **CONFIG
        )
        target_idx = credit_table.schema.index_of(target)
        assert goal.rules == filter_rules_to_target(
            full_result.rules, target_idx
        )
        assert goal.interesting_rules == filter_rules_to_target(
            full_result.interesting_rules, target_idx
        )
        assert goal.rules, "degenerate fixture: no target rules mined"

    @pytest.mark.parametrize(
        "target", ["employee_category", "monthly_income"]
    )
    def test_counts_strictly_fewer_candidates(
        self, credit_table, full_result, target
    ):
        goal = mine_quantitative_rules(
            credit_table, target=target, **CONFIG
        )
        assert (
            goal.stats.total_candidates
            < full_result.stats.total_candidates
        )

    def test_every_rule_concludes_on_the_target(
        self, credit_table
    ):
        goal = mine_quantitative_rules(
            credit_table, target="employee_category", **CONFIG
        )
        target_idx = credit_table.schema.index_of("employee_category")
        for rule in goal.rules:
            assert len(rule.consequent) == 1
            assert rule.consequent[0].attribute == target_idx


class TestTargetValidation:
    def test_unknown_target_fails_at_construction(self, credit_table):
        config = MinerConfig(target="no_such_attribute", **CONFIG)
        with pytest.raises(ValueError, match="no_such_attribute"):
            QuantitativeMiner(credit_table, config)

    def test_empty_target_rejected_by_config(self):
        with pytest.raises(ValueError, match="target"):
            MinerConfig(target="")

    def test_non_string_target_rejected_by_config(self):
        with pytest.raises(ValueError, match="target"):
            MinerConfig(target=5)

    def test_target_round_trips_through_config_dict(self):
        config = MinerConfig(target="employee_category", **CONFIG)
        rebuilt = MinerConfig.from_dict(config.to_dict())
        assert rebuilt.target == "employee_category"
        assert MinerConfig.from_dict(MinerConfig().to_dict()).target is None

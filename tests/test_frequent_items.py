"""Unit tests for repro.core.frequent_items (Step 3a)."""

import numpy as np
import pytest

from repro.core import Item, MinerConfig, TableMapper, find_frequent_items
from repro.core.frequent_items import AttributeCounts
from repro.data import age_partition_edges, people_table
from repro.table import RelationalTable, TableSchema, categorical, quantitative


@pytest.fixture
def mapper():
    return TableMapper(
        people_table(),
        MinerConfig(
            min_support=0.4,
            max_support=0.6,
            num_partitions={"Age": age_partition_edges()},
        ),
    )


class TestAttributeCounts:
    def test_range_count_matches_manual_sum(self):
        counts = AttributeCounts(np.array([3, 1, 4, 1, 5]))
        assert counts.range_count(0, 0) == 3
        assert counts.range_count(1, 3) == 6
        assert counts.range_count(0, 4) == 14

    def test_cumulative_shape(self):
        counts = AttributeCounts(np.array([2, 2]))
        np.testing.assert_array_equal(counts.cumulative, [0, 2, 4])


class TestFrequentItems:
    def test_paper_figure3_items(self, mapper):
        result = find_frequent_items(mapper, 0.4, 0.6)
        items = set(result.supports)
        # <Age: 20..29> = intervals 0..1, support 3.
        assert result.supports[Item(0, 0, 1)] == 3
        # <Age: 30..39> = intervals 2..3, support 2.
        assert result.supports[Item(0, 2, 3)] == 2
        # <Married: Yes> support 3, <Married: No> support 2.
        assert result.supports[Item(1, 0, 0)] == 3
        assert result.supports[Item(1, 1, 1)] == 2
        # <NumCars: 0..1> (ranks 0..1), support 3.
        assert result.supports[Item(2, 0, 1)] == 3
        # Ranges above max support (60%) are not combined further:
        assert Item(0, 0, 2) not in items  # support 4 = 80%
        assert Item(2, 0, 2) not in items  # support 5 = 100%

    def test_single_interval_above_maxsup_kept(self):
        # One value holds 80% support: above maxsup but still an item.
        schema = TableSchema([quantitative("x"), categorical("c")])
        records = [(1, "a")] * 8 + [(2, "a"), (3, "b")]
        table = RelationalTable.from_records(schema, records)
        mapper = TableMapper(
            table, MinerConfig(min_support=0.1, max_support=0.3)
        )
        result = find_frequent_items(mapper, 0.1, 0.3)
        assert Item(0, 0, 0) in result.supports  # the 80% single value
        assert Item(0, 0, 1) not in result.supports  # range above cap

    def test_categorical_values_never_combined(self, mapper):
        result = find_frequent_items(mapper, 0.2, 1.0)
        for item in result.supports:
            if item.attribute == 1:  # Married
                assert item.lo == item.hi

    def test_support_method_covers_infrequent_ranges(self, mapper):
        result = find_frequent_items(mapper, 0.4, 0.6)
        # <Age: interval 2> alone has support 1/5, below minsup, but its
        # probability is still available for interest computations.
        assert result.support(Item(0, 2, 2)) == pytest.approx(0.2)

    def test_minsup_filtering(self, mapper):
        result = find_frequent_items(mapper, 0.4, 0.6)
        for count in result.supports.values():
            assert count >= 2  # 40% of 5

    def test_items_sorted(self, mapper):
        items = find_frequent_items(mapper, 0.4, 0.6).items()
        assert items == sorted(items)


class TestInterestPrune:
    """Lemma 5: delete quantitative items with support > 1/R."""

    def _mapper(self):
        schema = TableSchema([quantitative("x"), categorical("c")])
        rng = np.random.default_rng(3)
        records = [
            (int(v), "a" if v < 60 else "b")
            for v in rng.uniform(0, 100, 400)
        ]
        table = RelationalTable.from_records(schema, records)
        return TableMapper(
            table,
            MinerConfig(
                min_support=0.1, max_support=0.9, num_partitions={"x": 10}
            ),
        )

    def test_prune_removes_wide_quantitative_ranges(self):
        mapper = self._mapper()
        kept = find_frequent_items(
            mapper, 0.1, 0.9, interest_level=2.0, prune_by_interest=True
        )
        threshold = 400 / 2.0
        assert kept.pruned_by_interest  # something was pruned
        for item in kept.supports:
            if item.attribute == 0:
                assert kept.supports[item] <= threshold

    def test_prune_spares_categorical_items(self):
        mapper = self._mapper()
        kept = find_frequent_items(
            mapper, 0.1, 0.9, interest_level=1.2, prune_by_interest=True
        )
        # 'a' covers ~60% > 1/1.2; categorical items are never pruned.
        assert Item(1, 0, 0) in kept.supports

    def test_prune_disabled_keeps_everything(self):
        mapper = self._mapper()
        free = find_frequent_items(mapper, 0.1, 0.9)
        pruned = find_frequent_items(
            mapper, 0.1, 0.9, interest_level=2.0, prune_by_interest=True
        )
        assert set(pruned.supports) | set(
            pruned.pruned_by_interest
        ) == set(free.supports)

    def test_prune_noop_for_r_at_most_one(self):
        mapper = self._mapper()
        result = find_frequent_items(
            mapper, 0.1, 0.9, interest_level=1.0, prune_by_interest=True
        )
        assert result.pruned_by_interest == []

"""Unit tests for repro.core.counting (super-candidates, Section 5.2)."""

import numpy as np
import pytest

from repro.core import Item, MinerConfig, TableMapper, make_itemset
from repro.core.counting import (
    BitmapIndex,
    _popcount_rows,
    CountingStats,
    PrefixSumCounter,
    categorical_mask,
    choose_backend,
    count_frequent_pairs,
    count_itemsets,
    group_candidates,
)
from repro.table import RelationalTable, TableSchema, categorical, quantitative


@pytest.fixture
def mapper():
    rng = np.random.default_rng(12)
    schema = TableSchema(
        [
            quantitative("x"),
            quantitative("y"),
            categorical("c", ("p", "q")),
        ]
    )
    n = 600
    x = rng.integers(0, 8, n).astype(float)
    y = np.clip(x + rng.integers(-2, 3, n), 0, 7).astype(float)
    c = (x + rng.integers(0, 4, n) > 5).astype(np.int64)
    table = RelationalTable.from_columns(schema, [x, y, c])
    return TableMapper(
        table,
        MinerConfig(min_support=0.05, num_partitions={"x": 8, "y": 8}),
    )


def brute_support(mapper, itemset):
    mask = np.ones(mapper.num_records, dtype=bool)
    for item in itemset:
        col = mapper.column(item.attribute)
        mask &= (col >= item.lo) & (col <= item.hi)
    return int(mask.sum())


def sample_candidates(mapper):
    out = []
    for lo, hi in [(0, 2), (1, 4), (3, 7), (2, 2)]:
        out.append(make_itemset([Item(0, lo, hi), Item(1, 0, 3)]))
        out.append(make_itemset([Item(0, lo, hi), Item(2, 1, 1)]))
        out.append(
            make_itemset([Item(0, lo, hi), Item(1, 2, 6), Item(2, 0, 0)])
        )
    out.append(make_itemset([Item(2, 0, 0)]))
    return out


class TestGrouping:
    def test_groups_share_categorical_values_and_attrs(self, mapper):
        candidates = sample_candidates(mapper)
        groups = group_candidates(candidates, {0, 1})
        for group in groups:
            for itemset in group.candidates:
                cat = tuple(
                    it for it in itemset if it.attribute == 2
                )
                assert cat == group.categorical_items
        total = sum(len(g.candidates) for g in groups)
        assert total == len(candidates)

    def test_rectangles_align_with_quant_attrs(self, mapper):
        groups = group_candidates(
            [make_itemset([Item(0, 1, 4), Item(1, 0, 3)])], {0, 1}
        )
        lo, hi = groups[0].rectangles()
        np.testing.assert_array_equal(lo, [[1, 0]])
        np.testing.assert_array_equal(hi, [[4, 3]])


class TestPrefixSumCounter:
    def test_matches_brute_force_1d(self, mapper):
        counter = PrefixSumCounter(mapper, (0,))
        lo = np.array([[0], [2], [5]])
        hi = np.array([[7], [4], [5]])
        counts = counter.count_rects(lo, hi)
        for i in range(3):
            expected = brute_support(
                mapper, (Item(0, int(lo[i, 0]), int(hi[i, 0])),)
            )
            assert counts[i] == expected

    def test_matches_brute_force_2d_with_mask(self, mapper):
        mask = mapper.column(2) == 1
        counter = PrefixSumCounter(mapper, (0, 1), mask)
        lo = np.array([[1, 0], [0, 0]])
        hi = np.array([[4, 3], [7, 7]])
        counts = counter.count_rects(lo, hi)
        expected0 = brute_support(
            mapper, (Item(0, 1, 4), Item(1, 0, 3), Item(2, 1, 1))
        )
        assert counts[0] == expected0
        assert counts[1] == int(mask.sum())

    def test_count_cross_matches_individual(self, mapper):
        counter = PrefixSumCounter(mapper, (0, 1))
        ranges_x = [(0, 3), (2, 5)]
        ranges_y = [(0, 7), (4, 6)]
        cross = counter.count_cross([ranges_x, ranges_y])
        assert cross.shape == (2, 2)
        for i, rx in enumerate(ranges_x):
            for j, ry in enumerate(ranges_y):
                expected = brute_support(
                    mapper, (Item(0, *rx), Item(1, *ry))
                )
                assert cross[i, j] == expected


class TestBitmapIndex:
    def test_range_words_match_brute_force(self, mapper):
        index = BitmapIndex.for_view(mapper)
        for attr, lo, hi in [(0, 0, 7), (0, 2, 5), (1, 3, 3), (2, 1, 1)]:
            words = index.range_words(attr, lo, hi)
            count = int(_popcount_rows(words))
            expected = brute_support(mapper, (Item(attr, lo, hi),))
            assert count == expected
            # Padding bits past num_records must stay zero, or
            # complements would leak phantom records into counts.
            tail = mapper.num_records % 64
            if tail:
                assert int(words[-1]) >> tail == 0

    def test_index_cached_on_view(self, mapper):
        assert BitmapIndex.for_view(mapper) is BitmapIndex.for_view(mapper)

    def test_empty_view(self):
        from repro.engine.shards import ShardView

        empty = ShardView([np.empty(0, np.int64)] * 2, [8, 8], 0)
        index = BitmapIndex.for_view(empty)
        assert index.range_words(0, 0, 7).size == 0

    def test_word_boundary_record_counts(self):
        # 64 and 65 records exercise the exact-word and spill-over cases.
        for n in (63, 64, 65, 128):
            values = np.arange(n, dtype=float) % 4
            schema = TableSchema([quantitative("v")])
            table = RelationalTable.from_columns(schema, [values])
            view = TableMapper(
                table,
                MinerConfig(min_support=0.1, num_partitions={"v": 4}),
            )
            index = BitmapIndex.for_view(view)
            for lo, hi in [(0, 3), (1, 2), (3, 3)]:
                count = int(
                    _popcount_rows(index.range_words(0, lo, hi))
                )
                assert count == brute_support(view, (Item(0, lo, hi),))


class TestCountItemsets:
    @pytest.mark.parametrize(
        "backend", ["array", "rtree", "direct", "bitmap"]
    )
    def test_backends_match_brute_force(self, mapper, backend):
        candidates = sample_candidates(mapper)
        counts = count_itemsets(candidates, mapper, {0, 1}, backend)
        assert set(counts) == set(candidates)
        for itemset, count in counts.items():
            assert count == brute_support(mapper, itemset)

    def test_backends_agree_with_each_other(self, mapper):
        candidates = sample_candidates(mapper)
        results = [
            count_itemsets(candidates, mapper, {0, 1}, b)
            for b in ("array", "rtree", "direct", "bitmap", "auto")
        ]
        for other in results[1:]:
            assert other == results[0]

    def test_stats_record_backends(self, mapper):
        stats = CountingStats()
        count_itemsets(
            sample_candidates(mapper), mapper, {0, 1}, "array", stats=stats
        )
        assert stats.groups_by_backend.get("array", 0) > 0
        # The pure-categorical candidate is counted via the mask.
        assert stats.groups_by_backend.get("mask", 0) == 1


class TestChooseBackend:
    def test_explicit_choice_respected(self, mapper):
        groups = group_candidates(
            [make_itemset([Item(0, 0, 1), Item(1, 0, 1)])], {0, 1}
        )
        assert choose_backend(groups[0], mapper, "rtree", 1 << 30) == "rtree"

    def test_auto_prefers_array_when_cheap(self, mapper):
        groups = group_candidates(
            [make_itemset([Item(0, 0, 1), Item(1, 0, 1)])], {0, 1}
        )
        assert choose_backend(groups[0], mapper, "auto", 1 << 30) == "array"

    def test_auto_falls_back_when_over_budget(self, mapper):
        groups = group_candidates(
            [make_itemset([Item(0, 0, 1), Item(1, 0, 1)])], {0, 1}
        )
        assert choose_backend(groups[0], mapper, "auto", 16) == "rtree"

    def test_bitmap_respected_within_budget(self, mapper):
        groups = group_candidates(
            [make_itemset([Item(0, 0, 1), Item(1, 0, 1)])], {0, 1}
        )
        assert (
            choose_backend(groups[0], mapper, "bitmap", 1 << 30) == "bitmap"
        )

    def test_bitmap_falls_back_when_over_budget(self, mapper):
        # Prefix tables for two 8-value attributes over 600 records need
        # a few KiB; a 16-byte budget must reject them.
        groups = group_candidates(
            [make_itemset([Item(0, 0, 1), Item(1, 0, 1)])], {0, 1}
        )
        assert choose_backend(groups[0], mapper, "bitmap", 16) == "rtree"

    def test_bitmap_fallback_stays_exact(self, mapper):
        candidates = sample_candidates(mapper)
        tight = count_itemsets(
            candidates, mapper, {0, 1}, "bitmap", memory_budget_bytes=16
        )
        roomy = count_itemsets(candidates, mapper, {0, 1}, "bitmap")
        assert tight == roomy

    def test_bitmap_recorded_in_stats(self, mapper):
        stats = CountingStats()
        count_itemsets(
            sample_candidates(mapper), mapper, {0, 1}, "bitmap", stats=stats
        )
        assert stats.groups_by_backend.get("bitmap", 0) > 0
        assert stats.groups_by_backend.get("mask", 0) == 1


class TestCountFrequentPairs:
    def _frequent_items(self, mapper):
        from repro.core import find_frequent_items

        return find_frequent_items(mapper, 0.05, 0.5)

    def test_matches_explicit_enumeration(self, mapper):
        from repro.core.candidates import pairs_by_attribute

        freq = self._frequent_items(mapper)
        buckets = pairs_by_attribute(freq.supports)
        min_count = 0.05 * mapper.num_records
        fast, num_candidates = count_frequent_pairs(
            buckets, mapper, {0, 1}, min_count
        )
        # Reference: enumerate and count every cross-attribute pair.
        slow = {}
        attrs = sorted(buckets)
        expected_candidates = 0
        for i, a in enumerate(attrs):
            for b in attrs[i + 1:]:
                for ia in buckets[a]:
                    for ib in buckets[b]:
                        expected_candidates += 1
                        pair = make_itemset([ia, ib])
                        count = brute_support(mapper, pair)
                        if count >= min_count:
                            slow[pair] = count
        assert num_candidates == expected_candidates
        assert fast == slow

    @pytest.mark.parametrize("backend", ["rtree", "bitmap"])
    def test_explicit_backends_agree(self, mapper, backend):
        from repro.core.candidates import pairs_by_attribute

        freq = self._frequent_items(mapper)
        buckets = pairs_by_attribute(freq.supports)
        min_count = 0.1 * mapper.num_records
        fast, __ = count_frequent_pairs(buckets, mapper, {0, 1}, min_count)
        slow, __ = count_frequent_pairs(
            buckets, mapper, {0, 1}, min_count, backend=backend
        )
        assert fast == slow

    def test_categorical_mask_none_for_empty(self, mapper):
        assert categorical_mask(mapper, ()) is None

    def test_categorical_mask_selects_records(self, mapper):
        mask = categorical_mask(mapper, (Item(2, 1, 1),))
        np.testing.assert_array_equal(mask, mapper.column(2) == 1)

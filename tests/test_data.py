"""Unit tests for the datasets (repro.data)."""

import numpy as np
import pytest

from repro.data import (
    EMPLOYEE_CATEGORIES,
    MARITAL_STATUSES,
    credit_schema,
    generate_credit_table,
    generate_skewed_table,
    people_table,
)
from repro.data.distributions import (
    bounded_fraction,
    clipped_normal,
    lognormal,
    skewed_integers,
    weighted_choice,
)


class TestPeopleTable:
    def test_matches_figure_1(self):
        table = people_table()
        assert table.num_records == 5
        assert table.record(0) == (23.0, "No", 1.0)
        assert table.record(4) == (38.0, "Yes", 2.0)

    def test_schema_kinds(self):
        schema = people_table().schema
        assert schema.attribute("Age").is_quantitative
        assert schema.attribute("Married").is_categorical
        assert schema.attribute("NumCars").is_quantitative


class TestCreditTable:
    def test_schema_matches_paper_section6(self):
        schema = credit_schema()
        assert len(schema.quantitative_indices) == 5
        assert len(schema.categorical_indices) == 2
        assert schema.attribute("employee_category").values == (
            EMPLOYEE_CATEGORIES
        )
        assert schema.attribute("marital_status").values == MARITAL_STATUSES

    def test_deterministic_under_seed(self):
        a = generate_credit_table(500, seed=5)
        b = generate_credit_table(500, seed=5)
        for name in a.schema.names:
            np.testing.assert_array_equal(a.column(name), b.column(name))

    def test_different_seeds_differ(self):
        a = generate_credit_table(500, seed=5)
        b = generate_credit_table(500, seed=6)
        assert not np.array_equal(
            a.column("monthly_income"), b.column("monthly_income")
        )

    def test_all_amounts_non_negative(self):
        table = generate_credit_table(2_000, seed=1)
        for name in ("monthly_income", "credit_limit"):
            assert (table.column(name) > 0).all()
        for name in ("current_balance", "ytd_balance", "ytd_interest"):
            # Tiny balances round to 0.00, like a real ledger.
            assert (table.column(name) >= 0).all()

    def test_balance_within_limit(self):
        table = generate_credit_table(2_000, seed=1)
        assert (
            table.column("current_balance") <= table.column("credit_limit")
        ).all()

    def test_income_correlates_with_limit(self):
        table = generate_credit_table(5_000, seed=2)
        r = np.corrcoef(
            table.column("monthly_income"), table.column("credit_limit")
        )[0, 1]
        assert r > 0.5

    def test_interest_correlates_with_ytd_balance(self):
        table = generate_credit_table(5_000, seed=2)
        r = np.corrcoef(
            table.column("ytd_balance"), table.column("ytd_interest")
        )[0, 1]
        assert r > 0.5

    def test_category_shifts_income(self):
        table = generate_credit_table(5_000, seed=2)
        emp = table.column("employee_category")
        income = table.column("monthly_income")
        salaried = income[emp == 0].mean()
        student = income[emp == 3].mean()
        assert salaried > 2 * student

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            generate_credit_table(0)


class TestSkewedTable:
    def test_mass_concentrated_at_low_values(self):
        table = generate_skewed_table(5_000, seed=0, skew=0.8)
        amount = table.column("amount")
        assert np.median(amount) < 10
        assert amount.max() > 20


class TestDistributions:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_lognormal_median(self):
        draws = lognormal(self.rng, 100.0, 0.5, 20_000)
        assert np.median(draws) == pytest.approx(100.0, rel=0.05)

    def test_lognormal_validation(self):
        with pytest.raises(ValueError):
            lognormal(self.rng, -1, 0.5, 10)
        with pytest.raises(ValueError):
            lognormal(self.rng, 1, 0, 10)

    def test_bounded_fraction_mean_and_range(self):
        draws = bounded_fraction(self.rng, 0.3, 10.0, 20_000)
        assert 0 < draws.min() and draws.max() < 1
        assert draws.mean() == pytest.approx(0.3, abs=0.02)

    def test_bounded_fraction_vector_mean(self):
        means = np.array([0.2, 0.8])
        draws = bounded_fraction(self.rng, means, 50.0, 2)
        assert draws.shape == (2,)

    def test_bounded_fraction_validation(self):
        with pytest.raises(ValueError):
            bounded_fraction(self.rng, 1.5, 10.0, 5)
        with pytest.raises(ValueError):
            bounded_fraction(self.rng, 0.5, -1.0, 5)

    def test_weighted_choice_proportions(self):
        codes = weighted_choice(self.rng, {"a": 3, "b": 1}, 20_000)
        assert (codes == 0).mean() == pytest.approx(0.75, abs=0.02)

    def test_weighted_choice_validation(self):
        with pytest.raises(ValueError):
            weighted_choice(self.rng, {}, 5)
        with pytest.raises(ValueError):
            weighted_choice(self.rng, {"a": -1}, 5)

    def test_clipped_normal_bounds(self):
        draws = clipped_normal(self.rng, 0.0, 1.0, 1_000, lo=-1, hi=1)
        assert draws.min() >= -1 and draws.max() <= 1

    def test_clipped_normal_validation(self):
        with pytest.raises(ValueError):
            clipped_normal(self.rng, 0.0, -1.0, 5)

    def test_skewed_integers_range_and_skew(self):
        draws = skewed_integers(self.rng, 0, 9, 0.5, 10_000)
        assert draws.min() >= 0 and draws.max() <= 9
        counts = np.bincount(draws, minlength=10)
        assert counts[0] > counts[5] > 0

    def test_skewed_integers_validation(self):
        with pytest.raises(ValueError):
            skewed_integers(self.rng, 5, 1, 0.5, 10)
        with pytest.raises(ValueError):
            skewed_integers(self.rng, 0, 9, 1.5, 10)

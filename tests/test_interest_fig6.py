"""End-to-end reproduction of the Figure 6 "Decoy" scenario (Section 4).

One attribute x with uniformly distributed values and a categorical y that
co-occurs strongly with x = 5 only.  The range <x: 3..5> ("Decoy") looks
interesting under a generalization-only measure because it contains the
genuinely interesting <x: 5..5>; the final measure subtracts the
interesting sub-range and notices the remainder <x: 3..4> ("Boring") is
at (below) expectation.
"""

import pytest

from repro.core import (
    InterestEvaluator,
    Item,
    MinerConfig,
    TableMapper,
    make_itemset,
)
from repro.core.apriori_quant import find_frequent_itemsets
from repro.table import RelationalTable, TableSchema, categorical, quantitative


def figure6_table():
    """x in 1..10 uniform (100 records each); y=yes 90% at x=5, 9% else."""
    records = []
    for v in range(1, 11):
        yes = 90 if v == 5 else 9
        records.extend((v, "yes") for _ in range(yes))
        records.extend((v, "no") for _ in range(100 - yes))
    return RelationalTable.from_records(
        TableSchema([quantitative("x"), categorical("y", ("no", "yes"))]),
        records,
    )


def build(interest_level=2.0, apply_specialization_check=True):
    config = MinerConfig(
        min_support=0.05,
        min_confidence=0.2,
        max_support=0.35,
        interest_level=interest_level,
        apply_specialization_check=apply_specialization_check,
    )
    table = figure6_table()
    mapper = TableMapper(table, config)
    support_counts, freq = find_frequent_itemsets(mapper, config)
    return InterestEvaluator(support_counts, freq, mapper, config), mapper


# x values 1..10 map to codes 0..9 (value ranks).
WHOLE = make_itemset([Item(0, 0, 9), Item(1, 1, 1)])
DECOY = make_itemset([Item(0, 2, 4), Item(1, 1, 1)])
INTERESTING = make_itemset([Item(0, 4, 4), Item(1, 1, 1)])
BORING = make_itemset([Item(0, 2, 3), Item(1, 1, 1)])


class TestFigure6:
    def test_supports_as_constructed(self):
        evaluator, _ = build()
        # y co-occurrence: 9 x 0.9% + 9% = 17.1%.
        assert evaluator.itemset_support(WHOLE) == pytest.approx(0.171)
        assert evaluator.itemset_support(DECOY) == pytest.approx(0.108)
        assert evaluator.itemset_support(INTERESTING) == pytest.approx(0.09)
        assert evaluator.itemset_support(BORING) == pytest.approx(0.018)

    def test_interesting_subrange_is_r_interesting(self):
        evaluator, _ = build()
        # Expected: 0.1 x 17.1% = 1.71%; actual 9% >= 2x.
        assert evaluator.itemset_r_interesting(INTERESTING, WHOLE)

    def test_decoy_passes_generalization_only_measure(self):
        # The tentative ([SA95]-style) measure is fooled: 10.8% >= 2 x
        # (0.3 x 17.1% = 5.13%) is false... with R=2 it is 10.26% <= 10.8%,
        # so the deviation test alone accepts the Decoy.
        evaluator, _ = build(apply_specialization_check=False)
        assert evaluator.itemset_r_interesting(DECOY, WHOLE)

    def test_decoy_killed_by_final_measure(self):
        evaluator, _ = build(apply_specialization_check=True)
        # The frequent specialization <x: 5..5, y> shares the right
        # endpoint; the remainder "Boring" has support 1.8% vs expected
        # 0.2 x 17.1% = 3.42% — far below R times expectation.
        assert not evaluator.itemset_r_interesting(DECOY, WHOLE)

    def test_boring_support_below_r_times_expectation(self):
        evaluator, _ = build()
        expected = evaluator.expected_support(BORING, WHOLE)
        actual = evaluator.itemset_support(BORING)
        assert actual < 2.0 * expected

    def test_expressible_differences_found(self):
        evaluator, _ = build()
        diffs = evaluator._expressible_differences(DECOY)
        assert BORING in diffs

    def test_decoy_rule_filtered_end_to_end(self):
        """The full miner drops decoy rules that have ancestors.

        <x: 5..5> => y is kept.  The width-2 decoys around it —
        <x: 4..5> => y and <x: 5..6> => y (codes 3..4 / 4..5) — have
        width-3 ancestors in the rule set, pass the deviation test thanks
        to the embedded x=5 spike, and are killed only by the
        specialization-difference check.  The width-3 ranges themselves
        survive: max-support caps range growth, so they have *no*
        ancestors, and the paper defines ancestor-less rules as
        interesting.
        """
        from repro.core import QuantitativeMiner

        config = MinerConfig(
            min_support=0.05,
            min_confidence=0.2,
            max_support=0.35,
            interest_level=2.0,
        )
        result = QuantitativeMiner(figure6_table(), config).mine()
        y_yes = make_itemset([Item(1, 1, 1)])
        kept = {
            r.antecedent
            for r in result.interesting_rules
            if r.consequent == y_yes
        }
        dropped = {
            r.antecedent
            for r in result.rules
            if r.consequent == y_yes
        } - kept
        assert make_itemset([Item(0, 4, 4)]) in kept
        assert make_itemset([Item(0, 3, 4)]) in dropped
        assert make_itemset([Item(0, 4, 5)]) in dropped
        # Ancestor-less widest ranges stay, per the paper's definition.
        assert make_itemset([Item(0, 2, 4)]) in kept

"""The tracer: span lifecycle, parenting, thread safety, null twin.

The tracer's contract is structural: every completed region becomes
exactly one span, parentage is explicit and survives any thread or
process interleaving, and the disabled twin implements the full
surface as no-ops so call sites never branch on whether tracing is on.
"""

import threading

import pytest

from repro.obs import (
    NULL_TRACE_ID,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    span_id_hex,
    timeit,
)
from repro.obs.tracer import _parent_id


class TestSpanLifecycle:
    def test_context_manager_records_on_exit(self):
        tracer = Tracer()
        with tracer.span("work", kind="stage", items=3) as span:
            span.set(outcome="done")
        (recorded,) = tracer.spans()
        assert recorded.name == "work"
        assert recorded.kind == "stage"
        assert recorded.attributes == {"items": 3, "outcome": "done"}
        assert recorded.parent_id is None
        assert recorded.duration >= 0.0

    def test_start_finish_split_scope(self):
        tracer = Tracer()
        handle = tracer.start_span("run", kind="run")
        assert tracer.spans() == []  # in flight, not yet recorded
        handle.finish(rules=7)
        (recorded,) = tracer.spans()
        assert recorded.attributes == {"rules": 7}

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        handle = tracer.start_span("once")
        handle.finish()
        handle.finish(extra=1)
        assert len(tracer.spans()) == 1
        assert tracer.spans()[0].attributes == {}

    def test_exception_recorded_as_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (recorded,) = tracer.spans()
        assert recorded.attributes["error"] == "ValueError"

    def test_span_ids_unique_and_monotonic(self):
        tracer = Tracer()
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        ids = [span.span_id for span in tracer.spans()]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5


class TestParenting:
    def test_parent_by_handle_span_and_id(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("by-handle", parent=root):
                pass
        root_span = tracer.spans()[1]
        tracer.record("by-span", parent=root_span, duration=0.0)
        tracer.record("by-id", parent=root_span.span_id, duration=0.0)
        children = [
            span
            for span in tracer.spans()
            if span.parent_id == root_span.span_id
        ]
        assert {span.name for span in children} == {
            "by-handle", "by-span", "by-id",
        }

    def test_null_handle_parent_means_root(self):
        # A disabled layer may hand its (null) handle to an enabled one.
        tracer = Tracer()
        null_handle = NULL_TRACER.span("nothing")
        with tracer.span("child", parent=null_handle):
            pass
        assert tracer.spans()[0].parent_id is None

    def test_bad_parent_type_raises(self):
        with pytest.raises(TypeError):
            _parent_id("span-3")

    def test_record_preserves_measured_duration(self):
        tracer = Tracer()
        span = tracer.record(
            "shard", "shard_task", None,
            duration=1.25, thread="lane-0", stage="pass_2",
        )
        assert span.duration == 1.25
        assert span.thread == "lane-0"
        assert span.attributes == {"stage": "pass_2"}


class TestThreadSafety:
    def test_concurrent_spans_all_collected(self):
        tracer = Tracer()
        root = tracer.start_span("root")

        def work(i):
            for j in range(50):
                with tracer.span(f"t{i}.{j}", parent=root):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        root.finish()
        spans = tracer.spans()
        assert len(spans) == 4 * 50 + 1
        assert len({span.span_id for span in spans}) == len(spans)
        child_parents = {
            span.parent_id for span in spans if span.name != "root"
        }
        assert child_parents == {root.span_id}


class TestNullTracer:
    def test_full_surface_is_noop(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("x", kind="stage", a=1) as handle:
            assert handle.set(b=2) is handle
        handle = NULL_TRACER.start_span("y")
        handle.finish(c=3)
        assert NULL_TRACER.record("z", duration=1.0) is None
        assert NULL_TRACER.spans() == []
        assert len(NULL_TRACER) == 0

    def test_shared_handle_carries_no_state(self):
        a = NULL_TRACER.span("a")
        b = NULL_TRACER.span("b")
        assert a is b
        assert a.span_id is None


class TestTimeit:
    def test_measures_block(self):
        with timeit() as timer:
            pass
        assert timer.seconds >= 0.0

    def test_records_span_when_traced(self):
        tracer = Tracer()
        with timeit("encode", tracer=tracer, kind="stage", rows=9) as t:
            t.set(phase="map")
        (span,) = tracer.spans()
        assert span.name == "encode"
        assert span.kind == "stage"
        assert span.attributes == {"rows": 9, "phase": "map"}
        assert span.duration == t.seconds

    def test_null_tracer_records_nothing(self):
        with timeit("encode", tracer=NULL_TRACER) as t:
            pass
        assert t.seconds >= 0.0
        assert NULL_TRACER.spans() == []

    def test_exception_sets_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with timeit("bad", tracer=tracer):
                raise RuntimeError("nope")
        (span,) = tracer.spans()
        assert span.attributes["error"] == "RuntimeError"


class TestTraceContext:
    def test_trace_ids_are_32_hex_and_unique(self):
        ids = {new_trace_id() for _ in range(32)}
        assert len(ids) == 32
        for trace_id in ids:
            assert len(trace_id) == 32
            int(trace_id, 16)
        assert NULL_TRACE_ID not in ids

    def test_span_ids_fit_63_bits(self):
        for _ in range(32):
            assert 0 < new_span_id() < 2**63

    def test_traceparent_round_trip(self):
        trace_id = new_trace_id()
        span_id = new_span_id()
        header = format_traceparent(trace_id, span_id)
        assert header == f"00-{trace_id}-{span_id_hex(span_id)}-01"
        assert parse_traceparent(header) == (trace_id, span_id)

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-0000000000000001-01",
            "00-" + "0" * 32 + "-0000000000000001-01",
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",
            "ff-" + "a" * 32 + "-0000000000000001-01",
            "00-" + "G" * 32 + "-0000000000000001-01",
        ],
    )
    def test_malformed_traceparent_is_none(self, header):
        assert parse_traceparent(header) is None

    def test_tracer_stamps_its_trace_id(self):
        tracer = Tracer(trace_id="ab" * 16)
        with tracer.start_span("root"):
            pass
        (span,) = tracer.spans()
        assert span.trace_id == "ab" * 16

    def test_adopt_keeps_foreign_trace_id(self):
        tracer = Tracer()
        foreign = Span(
            "shard_count", kind="worker_shard",
            span_id=new_span_id(), trace_id="cd" * 16,
        )
        tracer.adopt(foreign)
        (span,) = tracer.spans()
        assert span is foreign
        assert span.trace_id == "cd" * 16

    def test_adopt_fills_empty_trace_id(self):
        tracer = Tracer()
        span = Span("orphan", span_id=new_span_id())
        tracer.adopt(span)
        assert span.trace_id == tracer.trace_id

    def test_null_tracer_has_null_context(self):
        assert NULL_TRACER.trace_id == NULL_TRACE_ID
        span = Span("s")
        assert NULL_TRACER.adopt(span) is span
        assert NULL_TRACER.spans() == []


def test_span_dataclass_defaults():
    span = Span("bare")
    assert span.kind == "span"
    assert span.parent_id is None
    assert span.attributes == {}

"""Unit tests for repro.booleans.transactions."""

import pytest

from repro.booleans import TransactionDatabase


class TestConstruction:
    def test_transactions_sorted_and_deduped(self):
        db = TransactionDatabase([["b", "a", "b"]])
        assert db.transactions == [("a", "b")]

    def test_from_boolean_matrix(self):
        db = TransactionDatabase.from_boolean_matrix(
            [[1, 0, 1], [0, 1, 0]], item_names=["a", "b", "c"]
        )
        assert db.transactions == [("a", "c"), ("b",)]

    def test_from_boolean_matrix_default_names(self):
        db = TransactionDatabase.from_boolean_matrix([[1, 1]])
        assert db.transactions == [(0, 1)]

    def test_from_boolean_matrix_ragged_rejected(self):
        with pytest.raises(ValueError, match="differing lengths"):
            TransactionDatabase.from_boolean_matrix([[1], [1, 0]])

    def test_from_boolean_matrix_name_count_mismatch(self):
        with pytest.raises(ValueError, match="names"):
            TransactionDatabase.from_boolean_matrix([[1, 0]], item_names=["x"])

    def test_empty_database(self):
        db = TransactionDatabase([])
        assert db.num_transactions == 0
        assert db.items() == []


class TestQueries:
    def setup_method(self):
        self.db = TransactionDatabase(
            [["a", "b", "c"], ["a", "b"], ["a", "c"], ["b", "c"]]
        )

    def test_items(self):
        assert self.db.items() == ["a", "b", "c"]

    def test_support_count(self):
        assert self.db.support_count(["a", "b"]) == 2

    def test_support_fraction(self):
        assert self.db.support(["a"]) == pytest.approx(0.75)

    def test_support_of_empty_itemset_is_one(self):
        assert self.db.support([]) == pytest.approx(1.0)

    def test_support_on_empty_database_is_zero(self):
        assert TransactionDatabase([]).support(["a"]) == 0.0

    def test_len_and_iter(self):
        assert len(self.db) == 4
        assert list(self.db)[0] == ("a", "b", "c")

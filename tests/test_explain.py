"""Unit tests for rule explanations (repro.core.explain)."""

import pytest

from repro.core import Item, MinerConfig, QuantitativeMiner, make_itemset
from repro.table import RelationalTable, TableSchema, categorical, quantitative


def quarter_table():
    """x uniform over 0..7; y=yes rate 0.7 on [0,3], 0.1 above —
    specializations of <x: 0..3> => y track expectation exactly."""
    records = []
    for v in range(8):
        yes_count = 70 if v <= 3 else 10
        records.extend((v, "yes") for _ in range(yes_count))
        records.extend((v, "no") for _ in range(100 - yes_count))
    schema = TableSchema(
        [quantitative("x"), categorical("y", ("no", "yes"))]
    )
    return RelationalTable.from_records(schema, records)


@pytest.fixture(scope="module")
def result():
    config = MinerConfig(
        min_support=0.05,
        min_confidence=0.3,
        max_support=0.55,
        interest_level=1.1,
    )
    return QuantitativeMiner(quarter_table(), config).mine()


def find_rule(rules, antecedent, consequent):
    for r in rules:
        if (r.antecedent, r.consequent) == (antecedent, consequent):
            return r
    raise AssertionError(f"rule {antecedent} => {consequent} not mined")


class TestExplain:
    def test_ancestorless_rule_explained_as_interesting(self, result):
        rule = find_rule(
            result.rules,
            make_itemset([Item(0, 0, 3)]),
            make_itemset([Item(1, 1, 1)]),
        )
        explanation = result.explain(rule)
        assert not explanation.has_ancestors
        assert explanation.interesting
        text = explanation.render(result.mapper)
        assert "no more-general rule" in text
        assert "INTERESTING" in text

    def test_pruned_specialization_explained(self, result):
        child = find_rule(
            result.rules,
            make_itemset([Item(0, 0, 1)]),
            make_itemset([Item(1, 1, 1)]),
        )
        assert child not in result.interesting_rules
        explanation = result.explain(child)
        assert explanation.has_ancestors
        assert not explanation.interesting
        assert explanation.comparisons
        comparison = explanation.comparisons[0]
        # Tracks expectation exactly: ratios ~1.0, below R=1.1.
        assert comparison.support_ratio == pytest.approx(1.0, abs=0.05)
        assert comparison.confidence_ratio == pytest.approx(1.0, abs=0.05)
        assert not comparison.deviation_ok
        text = explanation.render(result.mapper)
        assert "FAILS" in text
        assert "pruned" in text

    def test_verdicts_match_filter_output(self, result):
        # The explanation's verdict must agree with the filter for every
        # mined rule (the explanation recomputes the same tests).
        interesting = set(result.interesting_rules)
        for rule in result.rules:
            explanation = result.explain(rule)
            assert explanation.interesting == (rule in interesting), (
                explanation.render(result.mapper)
            )

    def test_result_without_config_rejects_explain(self, result):
        from dataclasses import replace

        bare = replace(result, config=None)
        with pytest.raises(ValueError, match="MinerConfig"):
            bare.explain(result.rules[0])

"""Unit tests for repro.table.csv_io."""

import numpy as np
import pytest

from repro.table import (
    TableSchema,
    categorical,
    load_csv,
    quantitative,
    save_csv,
    sniff_schema,
)


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "people.csv"
    path.write_text(
        "age,married,cars\n"
        "23,No,1\n"
        "25,Yes,1\n"
        "29,No,0\n"
        "34,Yes,2\n"
        "38,Yes,2\n"
    )
    return path


class TestSniffing:
    def test_numeric_columns_become_quantitative(self, csv_path):
        table = load_csv(csv_path)
        schema = table.schema
        assert schema.attribute("age").is_quantitative
        assert schema.attribute("cars").is_quantitative
        assert schema.attribute("married").is_categorical

    def test_forcing_categorical_overrides_sniff(self, csv_path):
        table = load_csv(csv_path, categorical=["cars"])
        assert table.schema.attribute("cars").is_categorical

    def test_conflicting_declarations_rejected(self, csv_path):
        with pytest.raises(ValueError, match="both"):
            load_csv(csv_path, quantitative=["age"], categorical=["age"])

    def test_unknown_declared_column_rejected(self, csv_path):
        with pytest.raises(ValueError, match="not present"):
            load_csv(csv_path, quantitative=["height"])

    def test_sniff_schema_direct(self):
        schema = sniff_schema(
            ["a", "b"], [["1", "x"], ["2", "y"]]
        )
        assert schema.attribute("a").is_quantitative
        assert schema.attribute("b").is_categorical


class TestLoading:
    def test_values_loaded(self, csv_path):
        table = load_csv(csv_path)
        np.testing.assert_array_equal(
            table.column("age"), [23, 25, 29, 34, 38]
        )
        assert table.record(1)[1] == "Yes"

    def test_explicit_schema_reorders_columns(self, csv_path):
        schema = TableSchema(
            [categorical("married", ("Yes", "No")), quantitative("age")]
        )
        table = load_csv(csv_path, schema=schema)
        assert table.schema.names == ("married", "age")
        assert table.record(0) == ("No", 23.0)

    def test_explicit_schema_missing_column_rejected(self, csv_path):
        schema = TableSchema([quantitative("height")])
        with pytest.raises(ValueError, match="missing"):
            load_csv(csv_path, schema=schema)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="header"):
            load_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="row 3"):
            load_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("a\n1\n\n2\n")
        assert load_csv(path).num_records == 2


class TestRoundTrip:
    def test_save_then_load(self, csv_path, tmp_path):
        table = load_csv(csv_path)
        out = tmp_path / "out.csv"
        save_csv(table, out)
        reloaded = load_csv(out)
        assert reloaded.num_records == table.num_records
        np.testing.assert_array_equal(
            reloaded.column("age"), table.column("age")
        )
        assert reloaded.record(3) == table.record(3)

    def test_save_renders_integral_floats_as_ints(self, csv_path, tmp_path):
        table = load_csv(csv_path)
        out = tmp_path / "out.csv"
        save_csv(table, out)
        assert "23," in out.read_text()
        assert "23.0" not in out.read_text()


class TestMissingValues:
    def test_missing_value_errors_by_default(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("a,b\n1,x\n,y\n3,z\n")
        with pytest.raises(ValueError, match="missing value"):
            load_csv(path)

    def test_drop_policy_skips_rows(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("a,b\n1,x\nNA,y\n3,z\n")
        table = load_csv(path, on_missing="drop")
        assert table.num_records == 2
        np.testing.assert_array_equal(table.column("a"), [1, 3])

    def test_drop_keeps_quantitative_sniff(self, tmp_path):
        # Without dropping, the 'NA' cell would force column a to
        # categorical; with drop it stays quantitative.
        path = tmp_path / "gaps.csv"
        path.write_text("a\n1\nNA\n3\n")
        table = load_csv(path, on_missing="drop")
        assert table.schema.attribute("a").is_quantitative

    def test_custom_markers(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("a\n1\n-999\n3\n")
        table = load_csv(
            path, on_missing="drop", missing_markers=("-999",)
        )
        assert table.num_records == 2

    def test_invalid_policy_rejected(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a\n1\n")
        with pytest.raises(ValueError, match="on_missing"):
            load_csv(path, on_missing="impute")

    def test_whitespace_only_cell_is_missing(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("a,b\n1,x\n  ,y\n")
        table = load_csv(path, on_missing="drop")
        assert table.num_records == 1

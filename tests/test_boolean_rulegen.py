"""Unit tests for boolean rule generation (repro.booleans.rulegen)."""

import itertools

import pytest

from repro.booleans import TransactionDatabase, apriori, generate_rules


@pytest.fixture
def db():
    return TransactionDatabase(
        [
            ["bread", "milk"],
            ["bread", "diapers", "beer", "eggs"],
            ["milk", "diapers", "beer", "cola"],
            ["bread", "milk", "diapers", "beer"],
            ["bread", "milk", "diapers", "cola"],
        ]
    )


def brute_force_rules(db, min_support, min_confidence):
    """All rules by exhaustive enumeration, for cross-validation."""
    result = apriori(db, min_support)
    out = set()
    for itemset in result.frequent_itemsets():
        if len(itemset) < 2:
            continue
        for r in range(1, len(itemset)):
            for consequent in itertools.combinations(itemset, r):
                antecedent = tuple(
                    sorted(set(itemset) - set(consequent))
                )
                conf = result.support(itemset) / result.support(antecedent)
                if conf >= min_confidence:
                    out.add((antecedent, tuple(sorted(consequent))))
    return out


class TestGenerateRules:
    def test_rule_confidence_and_support(self, db):
        result = apriori(db, 0.4)
        rules = generate_rules(result, 0.9)
        by_key = {(r.antecedent, r.consequent): r for r in rules}
        rule = by_key[(("beer",), ("diapers",))]
        assert rule.confidence == pytest.approx(1.0)
        assert rule.support == pytest.approx(0.6)

    def test_matches_brute_force(self, db):
        result = apriori(db, 0.3)
        for minconf in (0.0, 0.5, 0.8, 1.0):
            rules = generate_rules(result, minconf)
            got = {(r.antecedent, r.consequent) for r in rules}
            assert got == brute_force_rules(db, 0.3, minconf)

    def test_rules_sorted_by_confidence_then_support(self, db):
        rules = generate_rules(apriori(db, 0.4), 0.5)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_no_rules_from_singletons(self):
        db = TransactionDatabase([["a"], ["a"], ["b"]])
        rules = generate_rules(apriori(db, 0.3), 0.0)
        assert rules == []

    def test_invalid_confidence_rejected(self, db):
        with pytest.raises(ValueError):
            generate_rules(apriori(db, 0.4), 1.5)

    def test_multi_item_consequents_generated(self, db):
        rules = generate_rules(apriori(db, 0.4), 0.6)
        assert any(len(r.consequent) >= 2 for r in rules)

    def test_str_rendering(self, db):
        rules = generate_rules(apriori(db, 0.4), 0.9)
        text = str(rules[0])
        assert "=>" in text
        assert "conf=" in text

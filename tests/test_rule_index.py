"""RuleIndex: indexed point queries equal the linear-scan reference.

The R*-tree path exists only for speed; its one correctness obligation
is returning exactly what the per-rule antecedent scan returns, for any
record — values present, missing, out of range, or unseen.  The rest of
the suite covers construction (live result, exported document, pickle
through an artifact cache — all three must answer identically), the
prediction contract, encoding errors, and the registry's id hygiene.
"""

import json

import pytest

from repro.core import mine_quantitative_rules
from repro.core.export import result_to_document, rules_to_json
from repro.data import generate_credit_table
from repro.engine.cache import MemoryCache
from repro.obs import Observability
from repro.rules import (
    Prediction,
    RuleIndex,
    RulesetRegistry,
    document_fingerprint,
    validate_ruleset_id,
)

CONFIG = dict(
    min_support=0.15,
    min_confidence=0.5,
    max_support=0.45,
    num_partitions=6,
    interest_level=1.1,
    max_itemset_size=2,
)


@pytest.fixture(scope="module")
def result():
    return mine_quantitative_rules(
        generate_credit_table(500, seed=21), **CONFIG
    )


@pytest.fixture(scope="module")
def index(result):
    return RuleIndex.from_result(result)


@pytest.fixture(scope="module")
def records(index):
    """A spread of records: full, partial, missing, out-of-range, unseen."""
    import random

    rng = random.Random(4)
    out = [
        {},  # all attributes missing
        {"monthly_income": 1e12},  # clamps to the top interval
        {"monthly_income": -1e12},  # clamps to the bottom interval
        {"employee_category": "never-seen-label"},
    ]
    for _ in range(150):
        record = {}
        for i, mapping in enumerate(index.mappings):
            if rng.random() < 0.2:
                continue
            if mapping.kind.value == "categorical":
                record[mapping.name] = rng.choice(
                    list(mapping.labels) + ["bogus"]
                )
            else:
                record[mapping.name] = rng.uniform(-5e4, 2e5)
        out.append(record)
    return out


class TestIndexEqualsLinearScan:
    def test_tree_and_scan_agree_on_every_record(self, index, records):
        fired = 0
        for record in records:
            via_tree = index.match(record, use_index=True)
            via_scan = index.match(record, use_index=False)
            assert via_tree == via_scan
            fired += len(via_tree)
        assert fired > 0, "degenerate fixture: nothing ever fired"

    def test_linear_only_index_answers_identically(self, result, records):
        linear = RuleIndex.from_result(result, use_index=False)
        tree = RuleIndex.from_result(result)
        assert not linear.indexed and tree.indexed
        for record in records[:40]:
            assert linear.match(record) == tree.match(record)

    def test_forcing_tree_on_linear_only_index_fails(self, result):
        linear = RuleIndex.from_result(result, use_index=False)
        with pytest.raises(ValueError, match="use_index"):
            linear.match({}, use_index=True)

    def test_matches_rank_by_score_then_canonical_order(
        self, index, records
    ):
        for record in records:
            matches = index.match(record)
            keys = [
                (-m.score, m.rule.sort_key()) for m in matches
            ]
            assert keys == sorted(keys)


class TestConstructionRoundTrips:
    def test_result_document_rebuilds_identical_index(
        self, result, index, records
    ):
        document = json.loads(json.dumps(result_to_document(result)))
        rebuilt = RuleIndex.from_document(document)
        assert rebuilt.fingerprint() == index.fingerprint()
        for record in records[:40]:
            assert rebuilt.match(record) == index.match(record)

    def test_rules_document_round_trips(self, result, records):
        document = json.loads(
            rules_to_json(result.interesting_rules, result.mapper)
        )
        rebuilt = RuleIndex.from_document(document)
        assert rebuilt.num_rules == len(result.interesting_rules)
        # Rule documents carry no lift, so ranking is by confidence;
        # the *set* of fired rules must still match the live index.
        live = RuleIndex.from_result(result)
        for record in records[:20]:
            assert {m.rule for m in rebuilt.match(record)} == {
                m.rule for m in live.match(record)
            }

    def test_document_without_attributes_is_rejected(self, result):
        document = json.loads(rules_to_json(result.interesting_rules))
        with pytest.raises(ValueError, match="attributes"):
            RuleIndex.from_document(document)

    def test_cache_round_trip_preserves_answers(self, index, records):
        cache = MemoryCache()
        key = index.save(cache)
        assert key == index.cache_key()
        loaded = RuleIndex.load(cache, key)
        assert loaded is not None
        assert loaded.fingerprint() == index.fingerprint()
        for record in records[:40]:
            assert loaded.match(record) == index.match(record)

    def test_load_miss_returns_none(self):
        assert RuleIndex.load(MemoryCache(), "ruleset-index:nope") is None


class TestPredict:
    def test_prediction_comes_from_best_target_match(self, index, records):
        for record in records:
            prediction = index.predict(record, "employee_category")
            assert isinstance(prediction, Prediction)
            target_idx = index.attribute_names.index("employee_category")
            for match in prediction.matches:
                assert any(
                    it.attribute == target_idx
                    for it in match.rule.consequent
                )
            if prediction.matches:
                best = prediction.matches[0]
                item = next(
                    it
                    for it in best.rule.consequent
                    if it.attribute == target_idx
                )
                assert prediction.interval == (item.lo, item.hi)
                assert prediction.confidence == best.rule.confidence
            else:
                assert prediction.interval is None

    def test_top_truncates_matches_not_prediction(self, index, records):
        record = next(
            r
            for r in records
            if len(index.predict(r, "employee_category").matches) > 1
        )
        untruncated = index.predict(record, "employee_category")
        top1 = index.predict(record, "employee_category", top=1)
        assert len(top1.matches) == 1
        assert top1.interval == untruncated.interval

    def test_unknown_target_raises(self, index):
        with pytest.raises(ValueError, match="unknown target"):
            index.predict({}, "nope")


class TestRecordEncoding:
    def test_unknown_attribute_raises(self, index):
        with pytest.raises(ValueError, match="unknown attribute"):
            index.match({"no_such_column": 1})

    def test_non_dict_record_raises(self, index):
        with pytest.raises(ValueError, match="mapping"):
            index.match([1, 2, 3])

    def test_unseen_label_and_non_numeric_encode_to_none(self, index):
        codes = index.encode_record(
            {
                "employee_category": "never-seen",
                "monthly_income": "not-a-number",
            }
        )
        assert set(codes) == {None}


class TestRulesetRegistry:
    def test_put_describe_match_predict(self, result):
        registry = RulesetRegistry(observability=Observability())
        document = result_to_document(result)
        metadata = registry.put("credit", document)
        assert metadata["ruleset_id"] == "credit"
        assert metadata["num_rules"] == len(result.interesting_rules)
        assert metadata["fingerprint"] == document_fingerprint(document)
        assert registry.ids() == ["credit"]
        reference = RuleIndex.from_result(result)
        record = {"monthly_income": 3000.0}
        assert registry.match("credit", record) == reference.match(record)
        assert registry.predict(
            "credit", record, "employee_category"
        ) == reference.predict(record, "employee_category")

    def test_identical_documents_share_one_cached_index(self, result):
        cache = MemoryCache()
        registry = RulesetRegistry(cache=cache)
        document = result_to_document(result)
        registry.put("a", document)
        registry.put("b", json.loads(json.dumps(document)))
        assert registry.index("a") is registry.index("b")
        assert cache.puts == 1

    def test_persistence_survives_restart(self, result, tmp_path):
        document = result_to_document(result)
        RulesetRegistry(tmp_path).put("persisted", document)
        reloaded = RulesetRegistry(tmp_path)
        assert reloaded.ids() == ["persisted"]
        record = {"monthly_income": 3000.0}
        assert reloaded.match("persisted", record) == RuleIndex.from_result(
            result
        ).match(record)
        assert reloaded.delete("persisted")
        assert RulesetRegistry(tmp_path).ids() == []

    def test_invalid_document_fails_the_upload(self):
        registry = RulesetRegistry()
        with pytest.raises(ValueError):
            registry.put("bad", {"rules": []})  # no attributes section
        assert registry.ids() == []

    @pytest.mark.parametrize(
        "bad", ["", "../up", ".hidden", "a/b", "a" * 101, "-lead", None, 7]
    )
    def test_hostile_ids_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_ruleset_id(bad)

    def test_unknown_ruleset_raises_keyerror(self):
        with pytest.raises(KeyError):
            RulesetRegistry().document("missing")

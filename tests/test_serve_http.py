"""End-to-end tests for the HTTP layer of repro.serve.

Two tiers: in-process servers (routing, payloads, streaming, limits,
tracing) and one subprocess test that SIGKILLs a real ``quantrules
serve`` process mid-queue and proves ``--recover`` finishes the
journaled jobs with rules bit-identical to the direct miner.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.core import MinerConfig, mine_quantitative_rules
from repro.core.export import result_to_document
from repro.obs import Observability
from repro.serve import (
    MiningHTTPServer,
    MiningService,
    parse_submission,
    ApiError,
)

CSV = "age,income,married\n" + "\n".join(
    f"{20 + i % 30},{1000 + 137 * (i % 17)},{'yes' if i % 3 else 'no'}"
    for i in range(60)
)
CONFIG = {"min_support": 0.2, "min_confidence": 0.5, "max_support": 0.5}


# ----------------------------------------------------------------------
# In-process server
# ----------------------------------------------------------------------
@pytest.fixture
def server():
    service = MiningService(observability=Observability()).start()
    http_server = MiningHTTPServer(
        ("127.0.0.1", 0), service, max_body=1 << 20
    )
    thread = threading.Thread(
        target=http_server.serve_forever, daemon=True
    )
    thread.start()
    yield http_server
    http_server.shutdown()
    thread.join(timeout=10)
    http_server.server_close()
    service.shutdown(drain_seconds=0)


def request(server, method, path, body=None, headers=None):
    req = urllib.request.Request(
        f"{server.url}{path}",
        data=body,
        method=method,
        headers=headers or {},
    )
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


def upload_people(server):
    status, payload = request(
        server,
        "PUT",
        "/v1/tables/people?categorical=married",
        CSV.encode(),
    )
    assert status == 201, payload
    return payload


def submit(server, body):
    return request(
        server,
        "POST",
        "/v1/jobs",
        json.dumps(body).encode(),
        {"Content-Type": "application/json"},
    )


def poll_done(server, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = request(server, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if payload["status"] not in ("queued", "running"):
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


class TestTables:
    def test_upload_describe_list(self, server):
        description = upload_people(server)
        assert description["num_records"] == 60
        status, got = request(server, "GET", "/v1/tables/people")
        assert status == 200 and got == description
        status, listing = request(server, "GET", "/v1/tables")
        assert listing == {"tables": ["people"]}

    def test_unknown_table_404(self, server):
        status, payload = request(server, "GET", "/v1/tables/ghost")
        assert status == 404
        assert "ghost" in payload["error"]["message"]

    def test_invalid_name_400(self, server):
        status, payload = request(
            server, "PUT", "/v1/tables/-bad", CSV.encode()
        )
        assert status == 400

    def test_body_over_limit_413(self, server):
        huge = b"x" * (server.max_body + 1)
        status, payload = request(
            server, "PUT", "/v1/tables/huge", huge
        )
        assert status == 413

    def test_missing_length_411(self, server):
        # urllib always sets Content-Length for bytes bodies, so drive
        # the socket by hand.
        import http.client

        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port)
        conn.putrequest("PUT", "/v1/tables/people")
        conn.endheaders()
        assert conn.getresponse().status == 411
        conn.close()

    @pytest.mark.parametrize("length", ["banana", "-5"])
    def test_malformed_length_400(self, server, length):
        # A garbage Content-Length is the client's fault: 400, not 500.
        import http.client

        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port)
        conn.putrequest("PUT", "/v1/tables/people")
        conn.putheader("Content-Length", length)
        conn.endheaders()
        assert conn.getresponse().status == 400
        conn.close()

    def test_traversal_job_id_rejected(self, server):
        upload_people(server)
        status, payload = submit(
            server,
            {
                "table": "people",
                "config": CONFIG,
                "job_id": "../../../../tmp/evil",
            },
        )
        assert status == 400
        assert "job id" in payload["error"]["message"]


class TestJobLifecycle:
    def test_submit_poll_rules(self, server):
        upload_people(server)
        status, job = submit(
            server, {"table": "people", "config": CONFIG}
        )
        assert status == 201
        assert job["timeout"] is None
        final = poll_done(server, job["job_id"])
        assert final["status"] == "completed"
        assert final["stats"]["num_rules"] > 0
        status, document = request(
            server, "GET", f"/v1/jobs/{job['job_id']}/rules"
        )
        assert status == 200
        direct = mine_quantitative_rules(
            server.service.tables.get("people"),
            MinerConfig.from_dict(CONFIG),
        )
        assert document["rules"] == result_to_document(direct)["rules"]

    def test_inline_table_submission(self, server):
        status, job = submit(
            server,
            {
                "table": {"csv": CSV, "categorical": ["married"]},
                "config": CONFIG,
            },
        )
        assert status == 201
        assert job["table"].startswith("inline-")
        assert poll_done(server, job["job_id"])["status"] == "completed"

    def test_listing_includes_submissions(self, server):
        upload_people(server)
        _, job = submit(server, {"table": "people", "config": CONFIG})
        status, listing = request(server, "GET", "/v1/jobs")
        assert job["job_id"] in [
            j["job_id"] for j in listing["jobs"]
        ]

    def test_rules_before_completion_409(self, server):
        upload_people(server)
        _, job = submit(
            server,
            {"table": "people", "config": CONFIG, "timeout": 0.0001},
        )
        final = poll_done(server, job["job_id"])
        assert final["status"] == "timed_out"
        assert "wall-clock budget" in final["cancel_reason"]
        status, payload = request(
            server, "GET", f"/v1/jobs/{job['job_id']}/rules"
        )
        assert status == 409

    def test_delete_cancels(self, server):
        upload_people(server)
        _, first = submit(server, {"table": "people", "config": CONFIG})
        _, second = submit(
            server, {"table": "people", "config": CONFIG}
        )
        status, payload = request(
            server, "DELETE", f"/v1/jobs/{second['job_id']}"
        )
        assert status in (200, 202)
        if payload["cancelled"]:
            final = poll_done(server, second["job_id"])
            assert final["status"] == "cancelled"
            assert final["cancel_reason"] == "cancelled via DELETE"

    def test_unknown_job_404(self, server):
        for method, path in [
            ("GET", "/v1/jobs/ghost"),
            ("DELETE", "/v1/jobs/ghost"),
            ("GET", "/v1/jobs/ghost/rules"),
            ("GET", "/v1/jobs/ghost/events"),
        ]:
            status, _ = request(server, method, path)
            assert status == 404, (method, path)

    def test_unroutable_404_and_bad_json_400(self, server):
        status, _ = request(server, "GET", "/v2/nothing")
        assert status == 404
        status, payload = submit_raw(server, b"{not json")
        assert status == 400


def submit_raw(server, body):
    return request(
        server, "POST", "/v1/jobs", body,
        {"Content-Type": "application/json"},
    )


class TestEventStreams:
    def consume(self, server, job_id, fmt):
        url = f"{server.url}/v1/jobs/{job_id}/events"
        headers = {}
        if fmt == "ndjson":
            url += "?format=ndjson"
        with urllib.request.urlopen(
            urllib.request.Request(url, headers=headers)
        ) as resp:
            return resp.headers.get("Content-Type"), resp.read()

    def test_ndjson_stream_ends_with_result(self, server):
        upload_people(server)
        _, job = submit(server, {"table": "people", "config": CONFIG})
        content_type, raw = self.consume(
            server, job["job_id"], "ndjson"
        )
        assert content_type == "application/x-ndjson"
        events = [
            json.loads(line) for line in raw.splitlines() if line
        ]
        assert events[0]["event"] == "status"
        assert any(e["event"] == "stage" for e in events)
        assert events[-1]["event"] == "completed"
        assert events[-1]["result"]["rules"]

    def test_sse_framing(self, server):
        upload_people(server)
        _, job = submit(server, {"table": "people", "config": CONFIG})
        content_type, raw = self.consume(server, job["job_id"], "sse")
        assert content_type == "text/event-stream"
        frames = [
            f for f in raw.decode().split("\n\n") if f.strip()
        ]
        assert frames[0].startswith("event: status\ndata: ")
        last = frames[-1]
        assert last.startswith("event: completed\n")
        payload = json.loads(last.split("data: ", 1)[1])
        assert payload["result"]["format"] == "repro.mining_result"

    def test_stream_replays_after_completion(self, server):
        upload_people(server)
        _, job = submit(server, {"table": "people", "config": CONFIG})
        poll_done(server, job["job_id"])
        _, raw = self.consume(server, job["job_id"], "ndjson")
        events = [
            json.loads(line) for line in raw.splitlines() if line
        ]
        assert events[-1]["event"] == "completed"


class TestOpsEndpoints:
    def test_healthz(self, server):
        status, payload = request(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert set(payload["jobs"]) >= {"submitted", "completed"}

    def test_metrics_reflect_requests_and_jobs(self, server):
        upload_people(server)
        _, job = submit(server, {"table": "people", "config": CONFIG})
        poll_done(server, job["job_id"])
        status, snapshot = request(server, "GET", "/metrics")
        assert status == 200
        counters = snapshot["counters"]
        assert counters["jobs.completed"] >= 1
        assert counters["http.requests.post"] >= 1
        assert counters["http.status.200"] >= 1

    def test_metrics_prometheus_negotiation(self, server):
        upload_people(server)
        # Request metrics are recorded after the response flushes, so
        # scrape until the preceding PUT has landed in the registry.
        deadline = time.monotonic() + 5.0
        while True:
            req = urllib.request.Request(
                f"{server.url}/metrics",
                headers={"Accept": "text/plain"},
            )
            with urllib.request.urlopen(req) as resp:
                assert resp.status == 200
                content_type = resp.headers["Content-Type"]
                text = resp.read().decode()
            if (
                "http_request_seconds" in text
                or time.monotonic() > deadline
            ):
                break
            time.sleep(0.02)
        assert content_type.startswith("text/plain; version=0.0.4")
        assert "# TYPE http_requests_put counter" in text
        assert "# TYPE http_request_seconds histogram" in text
        assert 'le="+Inf"' in text
        # ?format=prometheus forces exposition regardless of Accept;
        # the default stays JSON.
        with urllib.request.urlopen(
            f"{server.url}/metrics?format=prometheus"
        ) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
        status, snapshot = request(server, "GET", "/metrics")
        assert status == 200
        assert set(snapshot) == {"counters", "gauges", "histograms"}

    def test_request_latency_labeled_by_route_template(self, server):
        upload_people(server)
        request(server, "GET", "/v1/tables/people")
        request(server, "GET", "/nope")
        deadline = time.monotonic() + 5.0
        while True:
            labeled = (
                server.service.observability.metrics.labeled_snapshot()
            )
            seen = {
                (h["labels"].get("method"), h["labels"].get("route"))
                for h in labeled["histograms"]
                if h["name"] == "http.request_seconds"
            }
            if len(seen) >= 3 or time.monotonic() > deadline:
                break
            time.sleep(0.02)
        # Path parameters collapse into templates so one label set
        # covers every table/job id; unrouted paths share one bucket.
        assert ("PUT", "/v1/tables/{name}") in seen
        assert ("GET", "/v1/tables/{name}") in seen
        assert ("GET", "unmatched") in seen
        assert not any("people" in route for _, route in seen)
        for hist in labeled["histograms"]:
            if hist["name"] == "http.request_seconds":
                assert hist["buckets"] is not None

    def test_request_spans_parent_under_job(self, server):
        upload_people(server)
        _, job = submit(server, {"table": "people", "config": CONFIG})
        poll_done(server, job["job_id"])
        spans = server.service.observability.tracer.spans()
        kinds = {s.kind for s in spans}
        assert "request" in kinds and "job" in kinds
        job_ids = {
            s.span_id for s in spans if s.kind == "job"
        }
        parented = [
            s for s in spans
            if s.kind == "request" and s.parent_id in job_ids
        ]
        assert parented, "no request span parented under a job span"


class TestParseSubmission:
    def test_rejects_non_object(self):
        with pytest.raises(ApiError) as exc:
            parse_submission([1, 2])
        assert exc.value.status == 400

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"table": 7},
            {"table": {"csv": "   "}},
            {"table": "t", "config": [1]},
            {"table": "t", "config": {"min_support": "high"}},
            {"table": "t", "config": {"not_a_knob": 1}},
            {"table": "t", "timeout": -1},
            {"table": "t", "job_id": ""},
            {"table": "t", "job_id": 7},
            {"table": "t", "job_id": "../../../../tmp/evil"},
            {"table": "t", "job_id": "a/b"},
            {"table": "t", "job_id": ".hidden"},
            {"table": "t", "surprise": True},
        ],
    )
    def test_rejects_bad_bodies(self, body):
        with pytest.raises(ApiError) as exc:
            parse_submission(body)
        assert exc.value.status == 400

    def test_inline_accepts_comma_strings(self):
        kwargs = parse_submission(
            {"table": {"csv": CSV, "categorical": "married, other"}}
        )
        assert kwargs["categorical"] == ["married", "other"]

    def test_passthrough_fields(self):
        kwargs = parse_submission(
            {
                "table": "people",
                "config": CONFIG,
                "timeout": 5,
                "job_id": "mine-1",
            }
        )
        assert kwargs == {
            "table_name": "people",
            "config": CONFIG,
            "timeout": 5.0,
            "job_id": "mine-1",
        }


# ----------------------------------------------------------------------
# Kill-and-restart (real process, real SIGKILL)
# ----------------------------------------------------------------------
def start_serve(store_dir, *extra):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--jobs", "1",
            "--store-dir", str(store_dir), *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = proc.stdout.readline()
    assert line.startswith("serving on "), line
    return proc, line.split("serving on ", 1)[1].strip()


def http_json(method, url, body=None):
    req = urllib.request.Request(url, data=body, method=method)
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.load(resp)


def test_kill_and_recover_round_trip(tmp_path):
    store_dir = tmp_path / "store"
    proc, base = start_serve(store_dir)
    try:
        http_json(
            "PUT",
            f"{base}/v1/tables/people?categorical=married",
            CSV.encode(),
        )
        body = json.dumps(
            {"table": "people", "config": CONFIG}
        ).encode()
        job_ids = [
            http_json("POST", f"{base}/v1/jobs", body)["job_id"]
            for _ in range(3)
        ]
    finally:
        proc.kill()  # SIGKILL: no drain, no journal finalization
        proc.wait(timeout=10)

    # The dead server's journal must hold unfinished work (submits
    # raced a 1-wide runner; the kill landed within milliseconds).
    from repro.serve import DiskJobStore

    journaled = DiskJobStore(store_dir)
    statuses = {r.job_id: r.status for r in journaled.list_records()}
    journaled.close()
    assert set(job_ids) == set(statuses)
    unfinished = [
        j for j, s in statuses.items() if s != "completed"
    ]
    assert unfinished, f"kill landed too late: {statuses}"

    proc, base = start_serve(store_dir, "--recover")
    try:
        deadline = time.monotonic() + 60
        done = {}
        while time.monotonic() < deadline and len(done) < len(job_ids):
            for job_id in job_ids:
                payload = http_json("GET", f"{base}/v1/jobs/{job_id}")
                if payload["status"] not in ("queued", "running"):
                    done[job_id] = payload
            time.sleep(0.05)
        assert len(done) == len(job_ids), done
        assert all(
            p["status"] == "completed" for p in done.values()
        ), done
        assert any(p["recovered"] >= 1 for p in done.values())

        # Recovered rules are bit-identical to a direct library run.
        documents = [
            http_json("GET", f"{base}/v1/jobs/{job_id}/rules")
            for job_id in job_ids
        ]
    finally:
        proc.terminate()
        proc.wait(timeout=30)

    from repro.serve import TableRegistry

    table = TableRegistry(store_dir / "tables").get("people")
    expected = result_to_document(
        mine_quantitative_rules(table, MinerConfig.from_dict(CONFIG))
    )
    for document in documents:
        assert document["rules"] == expected["rules"]


def test_sigterm_drains_gracefully(tmp_path):
    store_dir = tmp_path / "store"
    proc, base = start_serve(store_dir, "--drain-seconds", "30")
    http_json(
        "PUT",
        f"{base}/v1/tables/people?categorical=married",
        CSV.encode(),
    )
    body = json.dumps({"table": "people", "config": CONFIG}).encode()
    job_id = http_json("POST", f"{base}/v1/jobs", body)["job_id"]
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 0

    from repro.serve import DiskJobStore

    store = DiskJobStore(store_dir)
    record = store.get(job_id)
    assert record.status == "completed"
    assert store.load_result(job_id) is not None
    store.close()

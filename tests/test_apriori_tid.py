"""Tests for AprioriTid and AprioriHybrid (repro.booleans.apriori_tid)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans import (
    TransactionDatabase,
    apriori,
    apriori_hybrid,
    apriori_tid,
)


@pytest.fixture
def db():
    return TransactionDatabase(
        [
            ["bread", "milk"],
            ["bread", "diapers", "beer", "eggs"],
            ["milk", "diapers", "beer", "cola"],
            ["bread", "milk", "diapers", "beer"],
            ["bread", "milk", "diapers", "cola"],
        ]
    )


class TestAprioriTid:
    def test_matches_apriori_on_basket_data(self, db):
        for minsup in (0.2, 0.4, 0.6, 0.9):
            assert (
                apriori_tid(db, minsup).support_counts
                == apriori(db, minsup).support_counts
            )

    def test_counts_are_exact(self, db):
        result = apriori_tid(db, 0.3)
        for itemset, count in result.support_counts.items():
            assert count == db.support_count(itemset)

    def test_max_size_respected(self, db):
        assert apriori_tid(db, 0.2, max_size=2).max_size == 2

    def test_empty_database(self):
        result = apriori_tid(TransactionDatabase([]), 0.5)
        assert result.support_counts == {}

    def test_invalid_support(self, db):
        with pytest.raises(ValueError):
            apriori_tid(db, -0.1)

    def test_random_cross_validation(self):
        rng = random.Random(23)
        items = list("abcdefg")
        db = TransactionDatabase(
            rng.sample(items, rng.randint(1, 5)) for _ in range(150)
        )
        for minsup in (0.05, 0.15, 0.3):
            assert (
                apriori_tid(db, minsup).support_counts
                == apriori(db, minsup).support_counts
            )


class TestAprioriHybrid:
    def test_matches_apriori(self, db):
        for minsup in (0.2, 0.4, 0.6):
            assert (
                apriori_hybrid(db, minsup).support_counts
                == apriori(db, minsup).support_counts
            )

    def test_switch_forced_early(self, db):
        # A huge budget switches after pass 2; results must not change.
        result = apriori_hybrid(db, 0.2, memory_budget_entries=10**9)
        assert result.support_counts == apriori(db, 0.2).support_counts

    def test_switch_never_taken(self, db):
        # Zero budget keeps it in Apriori mode throughout.
        result = apriori_hybrid(db, 0.2, memory_budget_entries=0)
        assert result.support_counts == apriori(db, 0.2).support_counts

    def test_invalid_support(self, db):
        with pytest.raises(ValueError):
            apriori_hybrid(db, 1.2)


transaction = st.frozensets(
    st.integers(min_value=0, max_value=11), min_size=0, max_size=7
)


class TestPropertyEquivalence:
    @given(
        st.lists(transaction, min_size=1, max_size=25),
        st.floats(0.05, 0.8),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_three_algorithms_agree(self, transactions, minsup):
        db = TransactionDatabase(transactions)
        reference = apriori(db, minsup).support_counts
        assert apriori_tid(db, minsup).support_counts == reference
        assert apriori_hybrid(db, minsup).support_counts == reference

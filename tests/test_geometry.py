"""Unit tests for repro.rtree.geometry."""

import pytest

from repro.rtree import Rect, bounding_rect


class TestConstruction:
    def test_basic(self):
        r = Rect((0, 0), (2, 3))
        assert r.ndim == 2
        assert r.lo == (0.0, 0.0)
        assert r.hi == (2.0, 3.0)

    def test_point(self):
        p = Rect.point((1, 2))
        assert p.lo == p.hi == (1.0, 2.0)
        assert p.area() == 0.0

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="inverted"):
            Rect((2,), (1,))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimensions"):
            Rect((0, 0), (1,))

    def test_zero_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Rect((), ())


class TestMeasures:
    def test_area(self):
        assert Rect((0, 0), (2, 3)).area() == 6.0

    def test_margin(self):
        assert Rect((0, 0), (2, 3)).margin() == 5.0

    def test_center(self):
        assert Rect((0, 0), (2, 4)).center() == (1.0, 2.0)

    def test_union(self):
        u = Rect((0, 0), (1, 1)).union(Rect((2, -1), (3, 0)))
        assert u == Rect((0, -1), (3, 1))

    def test_enlargement(self):
        base = Rect((0, 0), (1, 1))
        assert base.enlargement(Rect((0, 0), (1, 1))) == 0.0
        assert base.enlargement(Rect((1, 1), (2, 2))) == pytest.approx(3.0)

    def test_overlap_area(self):
        a = Rect((0, 0), (2, 2))
        b = Rect((1, 1), (3, 3))
        assert a.overlap_area(b) == pytest.approx(1.0)
        assert a.overlap_area(Rect((5, 5), (6, 6))) == 0.0

    def test_intersects_boundary_touch_counts(self):
        assert Rect((0,), (1,)).intersects(Rect((1,), (2,)))

    def test_distance_sq_to(self):
        r = Rect((0, 0), (1, 1))
        assert r.distance_sq_to((0.5, 0.5)) == 0.0
        assert r.distance_sq_to((2, 1)) == pytest.approx(1.0)
        assert r.distance_sq_to((2, 3)) == pytest.approx(5.0)


class TestContainment:
    def test_contains_point_inclusive(self):
        r = Rect((0, 0), (2, 2))
        assert r.contains_point((0, 0))
        assert r.contains_point((2, 2))
        assert not r.contains_point((2.01, 1))

    def test_contains_rect(self):
        outer = Rect((0, 0), (10, 10))
        assert outer.contains_rect(Rect((1, 1), (9, 9)))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect((5, 5), (11, 6)))


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert Rect((0,), (1,)) == Rect((0,), (1,))
        assert hash(Rect((0,), (1,))) == hash(Rect((0,), (1,)))
        assert Rect((0,), (1,)) != Rect((0,), (2,))

    def test_repr(self):
        assert "Rect" in repr(Rect((0,), (1,)))


class TestBoundingRect:
    def test_bounds_collection(self):
        rects = [Rect((0,), (1,)), Rect((5,), (7,)), Rect((-2,), (0,))]
        assert bounding_rect(rects) == Rect((-2,), (7,))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bounding_rect([])

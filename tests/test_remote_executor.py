"""Distributed counting: RemoteExecutor against real worker servers.

Three tiers:

- config/unit: address parsing, fn tokens, the restricted unpickler,
  :class:`~repro.core.config.RemoteConfig` normalization and validation;
- wire protocol: the ``/v1/shards/*`` routes exercised over real HTTP —
  publish/list/count round trips, every 400/403/404 contract, and the
  worker-side shard-count cache;
- equivalence: full mines through the remote executor are bit-identical
  to serial across counting backends, including when a worker dies
  mid-pass (fault-injected via ``fail_after_counts``) and when the
  whole fleet is unreachable (local fallback / hard failure).
"""

import base64
import json
import pickle
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import (
    MinerConfig,
    QuantitativeMiner,
    RemoteConfig,
    mine_quantitative_rules,
)
from repro.data import generate_credit_table
from repro.engine import (
    RemoteDispatchError,
    RemoteExecutor,
    parse_worker_address,
    resolve_executor,
    restricted_loads,
    shard_artifact_key,
    worker_fn_token,
)
from repro.obs import Observability
from repro.obs.export import span_to_record, validate_span_record
from repro.serve import (
    MiningHTTPServer,
    MiningService,
    ShardWorker,
)

BASE = {
    "min_support": 0.3,
    "min_confidence": 0.5,
    "max_itemset_size": 2,
}


# ----------------------------------------------------------------------
# Worker fleet plumbing
# ----------------------------------------------------------------------
class Fleet:
    """A handful of in-process worker servers behind real sockets."""

    def __init__(self, workers):
        self.servers = []
        self.services = []
        self.threads = []
        self.workers = workers
        for worker in workers:
            service = MiningService(
                observability=Observability(), shard_worker=worker
            ).start()
            server = MiningHTTPServer(("127.0.0.1", 0), service)
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            self.servers.append(server)
            self.services.append(service)
            self.threads.append(thread)

    @property
    def addresses(self):
        return [
            f"127.0.0.1:{server.server_address[1]}"
            for server in self.servers
        ]

    def close(self):
        for server, thread in zip(self.servers, self.threads):
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
        for service in self.services:
            service.shutdown(drain_seconds=0)


@pytest.fixture
def fleet():
    built = []

    def build(num_workers=2, fail_after_counts=()):
        workers = [
            ShardWorker(
                fail_after_counts=(
                    fail_after_counts[i]
                    if i < len(fail_after_counts)
                    else None
                )
            )
            for i in range(num_workers)
        ]
        group = Fleet(workers)
        built.append(group)
        return group

    yield build
    for group in built:
        group.close()


def remote_config(base, addresses, observability=None, **remote_overrides):
    blocks = {}
    if observability is not None:
        blocks["observability"] = observability
    return MinerConfig(
        **base,
        execution={"executor": "remote", "shard_size": 32},
        remote={"workers": addresses, **remote_overrides},
        **blocks,
    )


def request(address, method, path, body=None, content_type=None):
    headers = {"Content-Type": content_type} if content_type else {}
    req = urllib.request.Request(
        f"http://{address}{path}", data=body, method=method,
        headers=headers,
    )
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


def publish_view(address, view_fp="abc123", records=8, attributes=2):
    matrix = np.arange(records * attributes, dtype=np.int64).reshape(
        attributes, records
    ) % 3
    blob = pickle.dumps(
        {
            "matrix": matrix,
            "cardinalities": [3] * attributes,
            "num_records": records,
        }
    )
    status, payload = request(
        address,
        "PUT",
        f"/v1/shards/tables/{view_fp}",
        blob,
        "application/octet-stream",
    )
    return status, payload, matrix


def count_request(view="abc123", start=0, stop=4, **extra):
    body = {
        "view": view,
        "start": start,
        "stop": stop,
        "fn": "repro.core.frequent_items:_histogram_shard",
        "payload": base64.b64encode(pickle.dumps(None)).decode("ascii"),
    }
    body.update(extra)
    return body


def post_count(address, body):
    return request(
        address,
        "POST",
        "/v1/shards/count",
        json.dumps(body).encode(),
        "application/json",
    )


# ----------------------------------------------------------------------
# Unit: addresses, tokens, restricted pickle, RemoteConfig
# ----------------------------------------------------------------------
class TestUnits:
    def test_parse_worker_address(self):
        assert parse_worker_address("localhost:8765") == (
            "localhost", 8765
        )
        assert parse_worker_address(" 10.0.0.2:80 ") == ("10.0.0.2", 80)
        for bad in ("nohost", ":80", "host:", "host:0", "host:99999",
                    "host:abc", ""):
            with pytest.raises(ValueError):
                parse_worker_address(bad)

    def test_worker_fn_token(self):
        from repro.core.frequent_items import _histogram_shard

        token = worker_fn_token(_histogram_shard)
        assert token == "repro.core.frequent_items:_histogram_shard"
        # Closures, lambdas, and non-repro callables are not remotable.
        assert worker_fn_token(lambda view, payload: None) is None
        assert worker_fn_token(json.dumps) is None
        assert worker_fn_token(TestUnits.test_worker_fn_token) is None

    def test_restricted_loads_rejects_foreign_modules(self):
        import os

        evil = pickle.dumps(os.getcwd)
        with pytest.raises(pickle.UnpicklingError):
            restricted_loads(evil)
        # Friendly payloads still round-trip.
        friendly = {"a": np.arange(3), "b": [(1, 2)]}
        loaded = restricted_loads(pickle.dumps(friendly))
        assert list(loaded["a"]) == [0, 1, 2]

    def test_shard_artifact_key_matches_shard_cache_formula(self):
        from repro.engine.fingerprint import fingerprint

        expected = fingerprint(
            "shard-counts", "pass_2", "sfp", "efp", "pfp"
        )
        assert shard_artifact_key("pass_2", "sfp", "efp", "pfp") == (
            expected
        )

    def test_remote_config_normalization(self):
        config = RemoteConfig(workers="a:1, b:2")
        assert config.workers == ("a:1", "b:2")
        round_trip = MinerConfig(
            remote={"workers": ["a:1"]}
        ).to_dict()["remote"]
        assert round_trip["workers"] == ("a:1",)
        again = MinerConfig.from_dict(
            {"remote": {"workers": ["a:1"], "max_retries": 5}}
        )
        assert again.remote.max_retries == 5

    def test_remote_config_validation(self):
        with pytest.raises(ValueError):
            RemoteConfig(workers="nohost")
        with pytest.raises(ValueError):
            RemoteConfig(workers="a:1", task_timeout=0)
        with pytest.raises(ValueError):
            RemoteConfig(workers="a:1", max_retries=-1)
        with pytest.raises(ValueError):
            RemoteConfig(workers="a:1", backoff_seconds=-0.5)

    def test_remote_executor_needs_workers(self):
        with pytest.raises(ValueError, match="workers"):
            MinerConfig(execution={"executor": "remote"})
        with pytest.raises(ValueError, match="worker addresses"):
            resolve_executor("remote")
        with pytest.raises(ValueError):
            RemoteExecutor([])

    def test_executor_surface(self):
        executor = RemoteExecutor(["127.0.0.1:1"])
        try:
            assert executor.name == "remote"
            assert executor.num_workers == 1
            assert executor.worker_addresses == ["127.0.0.1:1"]
            # The generic map() surface stays in-process.
            assert list(executor.map(str.upper, ["a", "b"])) == [
                "A", "B"
            ]
        finally:
            executor.close()


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestWorkerRoutes:
    def test_publish_list_count_round_trip(self, fleet):
        address = fleet(num_workers=1).addresses[0]
        status, listing = request(address, "GET", "/v1/shards/tables")
        assert (status, listing) == (200, {"views": []})

        status, described, matrix = publish_view(address)
        assert status == 201
        assert described == {
            "view": "abc123", "records": 8, "attributes": 2,
        }
        status, listing = request(address, "GET", "/v1/shards/tables")
        assert (status, listing) == (200, {"views": ["abc123"]})

        status, payload = post_count(address, count_request(stop=8))
        assert status == 200, payload
        histograms = restricted_loads(
            base64.b64decode(payload["result"])
        )
        for attribute, histogram in enumerate(histograms):
            expected = np.bincount(matrix[attribute], minlength=3)
            assert list(histogram) == list(expected)
        assert payload["cache"] == "uncached"
        assert payload["seconds"] >= 0

    def test_count_cache_hit_on_artifact_key(self, fleet):
        address = fleet(num_workers=1).addresses[0]
        publish_view(address)
        body = count_request(artifact_key="k1", stage="pass_2")
        status, first = post_count(address, body)
        status2, second = post_count(address, body)
        assert (status, status2) == (200, 200)
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert second["result"] == first["result"]

    def test_routes_disabled_without_worker_mode(self):
        service = MiningService(observability=Observability()).start()
        server = MiningHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            address = f"127.0.0.1:{server.server_address[1]}"
            status, payload = request(
                address, "GET", "/v1/shards/tables"
            )
            assert status == 403
            assert "--worker" in payload["error"]["message"]
            status, _ = post_count(address, count_request())
            assert status == 403
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            service.shutdown(drain_seconds=0)

    def test_unknown_view_404(self, fleet):
        address = fleet(num_workers=1).addresses[0]
        status, payload = post_count(
            address, count_request(view="ghost")
        )
        assert status == 404
        assert "ghost" in payload["error"]["message"]

    @pytest.mark.parametrize(
        "mutate",
        [
            {"start": "0"},
            {"start": True},
            {"start": 5, "stop": 2},
            {"start": -1},
            {"fn": "os.system"},
            {"fn": "repro.core"},
            {"fn": "repro.core:a:b"},
            {"fn": ":broken"},
            {"payload": 42},
            {"surprise": 1},
            {"artifact_key": ""},
        ],
        ids=lambda m: next(iter(m.items()))[0] + "="
        + repr(next(iter(m.items()))[1]),
    )
    def test_malformed_count_requests_400(self, fleet, mutate):
        address = fleet(num_workers=1).addresses[0]
        publish_view(address)
        status, payload = post_count(address, count_request(**mutate))
        assert status == 400, payload
        assert "error" in payload

    def test_malformed_count_shapes_400(self, fleet):
        address = fleet(num_workers=1).addresses[0]
        publish_view(address)
        # Not a JSON object at all.
        status, _ = request(
            address, "POST", "/v1/shards/count",
            json.dumps([1, 2]).encode(), "application/json",
        )
        assert status == 400
        # Not JSON at all.
        status, _ = request(
            address, "POST", "/v1/shards/count",
            b"not json", "application/json",
        )
        assert status == 400
        # Missing a required field.
        body = count_request()
        del body["fn"]
        status, _ = post_count(address, body)
        assert status == 400
        # Payload that is not base64.
        status, _ = post_count(
            address, count_request(payload="!!!not-b64!!!")
        )
        assert status == 400
        # Range past the published view's records (8).
        status, _ = post_count(address, count_request(stop=9))
        assert status == 400
        # An unresolvable (but well-formed) fn token.
        status, _ = post_count(
            address, count_request(fn="repro.no_such_module:fn")
        )
        assert status == 400

    def test_publish_rejects_bad_blobs(self, fleet):
        address = fleet(num_workers=1).addresses[0]
        for blob in (
            b"not a pickle",
            pickle.dumps({"matrix": [1, 2]}),
            pickle.dumps(
                {
                    "matrix": np.zeros((2, 4), dtype=np.int64),
                    "cardinalities": [3],
                    "num_records": 4,
                }
            ),
        ):
            status, payload = request(
                address, "PUT", "/v1/shards/tables/xyz", blob,
                "application/octet-stream",
            )
            assert status == 400, payload


# ----------------------------------------------------------------------
# Equivalence: remote mining == serial mining, bit for bit
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def table():
    return generate_credit_table(600, seed=11)


@pytest.fixture(scope="module")
def serial_results(table):
    results = {}
    for backend in ("array", "bitmap", "direct"):
        results[backend] = QuantitativeMiner(
            table, MinerConfig(**BASE, counting=backend)
        ).mine()
    return results


def assert_same_mining(remote, serial):
    assert remote.support_counts == serial.support_counts
    assert [str(r) for r in remote.rules] == [
        str(r) for r in serial.rules
    ]
    assert [str(r) for r in remote.interesting_rules] == [
        str(r) for r in serial.interesting_rules
    ]


class TestEquivalence:
    @pytest.mark.parametrize("backend", ["array", "bitmap", "direct"])
    def test_remote_matches_serial(
        self, fleet, table, serial_results, backend
    ):
        group = fleet(num_workers=2)
        config = remote_config(
            dict(BASE, counting=backend), group.addresses
        )
        remote = QuantitativeMiner(table, config).mine()
        assert_same_mining(remote, serial_results[backend])
        execution = remote.stats.execution
        assert execution.executor == "remote"
        assert execution.remote_tasks > 0
        assert execution.remote_worker_deaths == 0
        assert execution.remote_local_fallbacks == 0
        assert set(execution.remote_worker_tasks) == set(
            group.addresses
        )

    @pytest.mark.parametrize("backend", ["array", "bitmap", "direct"])
    def test_worker_death_mid_pass_is_bit_identical(
        self, fleet, table, serial_results, backend
    ):
        # Worker 0 serves exactly one count, then fails every request:
        # the coordinator must mark it dead and re-dispatch its shard
        # tasks to worker 1 without changing a single count.
        group = fleet(num_workers=2, fail_after_counts=(1, None))
        config = remote_config(
            dict(BASE, counting=backend),
            group.addresses,
            observability={"enabled": True},
            backoff_seconds=0.01,
        )
        remote = QuantitativeMiner(table, config).mine()
        assert_same_mining(remote, serial_results[backend])
        execution = remote.stats.execution
        assert execution.remote_worker_deaths >= 1
        assert execution.remote_retries >= 1
        # The survivor carried the remainder of the run.
        survivor = group.addresses[1]
        assert execution.remote_worker_tasks[survivor] > 0
        # The fault shows up in the labeled telemetry too: retries and
        # the death accounted against the failed worker's address, and
        # a remote_retry event span under some dispatch span.
        dead = group.addresses[0]
        counters = remote.observability.metrics.snapshot()["counters"]
        assert counters[f'remote.retries{{worker="{dead}"}}'] >= 1
        assert counters[f'remote.dead_workers{{worker="{dead}"}}'] == 1
        spans = remote.observability.tracer.spans()
        retry_events = [
            s for s in spans
            if s.kind == "event" and s.name == "remote_retry"
        ]
        assert retry_events
        span_ids = {s.span_id for s in spans}
        assert all(e.parent_id in span_ids for e in retry_events)

    def test_whole_fleet_dead_falls_back_local(
        self, table, serial_results
    ):
        config = remote_config(
            BASE, ["127.0.0.1:9", "127.0.0.1:10"],
            backoff_seconds=0.0, task_timeout=0.5,
        )
        remote = QuantitativeMiner(table, config).mine()
        assert_same_mining(remote, serial_results["array"])
        execution = remote.stats.execution
        assert execution.remote_local_fallbacks > 0
        assert execution.remote_worker_deaths == 2

    def test_whole_fleet_dead_raises_without_fallback(self, table):
        config = remote_config(
            BASE, ["127.0.0.1:9"],
            backoff_seconds=0.0, task_timeout=0.5,
            fallback_local=False,
        )
        with pytest.raises(RemoteDispatchError):
            QuantitativeMiner(table, config).mine()

    def test_worker_cache_reused_across_runs(self, fleet, table):
        group = fleet(num_workers=2)
        config = remote_config(BASE, group.addresses)
        first = QuantitativeMiner(table, config).mine()
        second = QuantitativeMiner(table, config).mine()
        assert_same_mining(second, first)
        assert second.stats.execution.remote_cache_hits > 0

    def test_workers_override_implies_remote_executor(
        self, fleet, table, serial_results
    ):
        group = fleet(num_workers=2)
        result = mine_quantitative_rules(
            table,
            workers=",".join(group.addresses),
            shard_size=32,
            **BASE,
        )
        assert_same_mining(result, serial_results["array"])
        assert result.stats.execution.executor == "remote"

    def test_summary_mentions_remote_lane(self, fleet, table):
        group = fleet(num_workers=2)
        config = remote_config(BASE, group.addresses)
        result = QuantitativeMiner(table, config).mine()
        summary = result.stats.summary()
        assert "remote counting:" in summary
        for address in group.addresses:
            assert address in summary


class TestFleetTelemetry:
    """Distributed trace propagation and per-worker labeled metrics."""

    def mine_with_obs(self, fleet, table, **kwargs):
        group = fleet(num_workers=2)
        config = remote_config(
            BASE, group.addresses,
            observability={"enabled": True}, **kwargs,
        )
        return group, QuantitativeMiner(table, config).mine()

    def test_worker_spans_stitch_under_coordinator_trace(
        self, fleet, table
    ):
        group, result = self.mine_with_obs(fleet, table)
        tracer = result.observability.tracer
        spans = tracer.spans()
        dispatches = [s for s in spans if s.kind == "remote_dispatch"]
        shard_counts = [s for s in spans if s.kind == "worker_shard"]
        assert dispatches and shard_counts
        dispatch_ids = {s.span_id for s in dispatches}
        for span in shard_counts:
            assert span.name == "shard_count"
            assert span.trace_id == tracer.trace_id
            assert span.parent_id in dispatch_ids
            assert span.attributes["worker"] in group.addresses
        # The merged log is one self-contained tree: every parent
        # resolves, and every record round-trips through the exported
        # schema (trace_id included).
        span_ids = {s.span_id for s in spans}
        for span in spans:
            assert span.parent_id is None or span.parent_id in span_ids
            assert validate_span_record(span_to_record(span)) == []

    def test_worker_spans_place_on_coordinator_clock(
        self, fleet, table
    ):
        _, result = self.mine_with_obs(fleet, table)
        tracer = result.observability.tracer
        by_id = {s.span_id: s for s in tracer.spans()}
        for span in by_id.values():
            if span.kind != "worker_shard":
                continue
            parent = by_id[span.parent_id]
            # Rebasing start_unix onto the tracer epoch keeps the
            # worker's work inside (or within clock skew of) its
            # dispatch span's window.
            assert span.start >= parent.start - 1.0
            assert span.duration <= parent.duration + 1.0

    def test_worker_metrics_labeled_by_address(self, fleet, table):
        group, result = self.mine_with_obs(fleet, table)
        labeled = result.observability.metrics.labeled_snapshot()
        counted = {
            c["labels"]["worker"]
            for c in labeled["counters"]
            if c["name"] == "worker.counts" and c["value"] > 0
        }
        assert counted == set(group.addresses)
        latency_workers = {
            h["labels"]["worker"]
            for h in labeled["histograms"]
            if h["name"] == "remote.count_seconds"
        }
        assert latency_workers == set(group.addresses)
        for hist in labeled["histograms"]:
            if hist["name"] == "remote.count_seconds":
                assert hist["buckets"] is not None
                assert sum(hist["buckets"]["counts"]) == hist["count"]

    def test_dead_worker_leaves_stitchable_truncated_trace(
        self, fleet, table
    ):
        # Worker 0 dies mid-pass: its completed shard_count spans stay
        # in the trace, its failed request contributes none, and the
        # log remains a valid tree (no dangling parents).
        group = fleet(num_workers=2, fail_after_counts=(1, None))
        config = remote_config(
            BASE, group.addresses,
            observability={"enabled": True},
            backoff_seconds=0.01,
        )
        result = QuantitativeMiner(table, config).mine()
        tracer = result.observability.tracer
        spans = tracer.spans()
        span_ids = {s.span_id for s in spans}
        for span in spans:
            assert span.parent_id is None or span.parent_id in span_ids
            assert validate_span_record(span_to_record(span)) == []
        survivors = {
            s.attributes["worker"]
            for s in spans
            if s.kind == "worker_shard"
        }
        assert group.addresses[1] in survivors

    def test_disabled_observability_adds_no_wire_telemetry(
        self, fleet, table
    ):
        # Without obs the coordinator must not send traceparent, so
        # workers skip span fabrication entirely.
        group = fleet(num_workers=2)
        config = remote_config(BASE, group.addresses)
        result = QuantitativeMiner(table, config).mine()
        assert result.observability is None

"""OTLP-shaped telemetry: document mapping, validators and the pusher.

Three tiers: the span/metric -> OTLP/JSON mapping against its own
validators (including property tests that labels and histogram buckets
survive export byte-for-byte), the validators against deliberately
broken documents, and :class:`~repro.obs.TelemetryPusher` against an
in-process stub collector — batching, retry-on-5xx, drop-after-retries,
bounded queueing and the drain-on-close guarantee.
"""

import json
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    NULL_TRACE_ID,
    MetricsRegistry,
    Span,
    TelemetryPusher,
    Tracer,
    metrics_to_resource_metrics,
    new_span_id,
    spans_to_resource_spans,
    validate_otlp_metrics,
    validate_otlp_traces,
)


# ----------------------------------------------------------------------
# Stub collector
# ----------------------------------------------------------------------
class _CollectorHandler(BaseHTTPRequestHandler):
    def do_POST(self):
        length = int(self.headers.get("Content-Length", 0))
        document = json.loads(self.rfile.read(length))
        with self.server.lock:
            script = self.server.fail_script
            status = script.popleft() if script else 200
            self.server.requests.append((self.path, status, document))
        self.send_response(status)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def log_message(self, *args):
        pass


class Collector:
    """A stub OTLP/HTTP receiver recording every POST it sees.

    ``fail_script`` is a queue of statuses to answer with before
    settling on 200 — the lever for the retry/drop tests.
    """

    def __init__(self):
        self.server = ThreadingHTTPServer(
            ("127.0.0.1", 0), _CollectorHandler
        )
        self.server.lock = threading.Lock()
        self.server.requests = []
        self.server.fail_script = deque()
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    @property
    def endpoint(self):
        return f"http://127.0.0.1:{self.server.server_address[1]}"

    def fail_next(self, *statuses):
        with self.server.lock:
            self.server.fail_script.extend(statuses)

    def requests_to(self, path):
        with self.server.lock:
            return [
                (status, document)
                for p, status, document in self.server.requests
                if p == path
            ]

    def close(self):
        self.server.shutdown()
        self.thread.join(timeout=10)
        self.server.server_close()


@pytest.fixture
def collector():
    stub = Collector()
    yield stub
    stub.close()


def traced_run():
    """A tracer + registry pair with a small, realistic recording."""
    tracer = Tracer()
    registry = MetricsRegistry()
    with tracer.start_span("run") as run:
        with tracer.start_span("stage", parent=run):
            registry.counter(
                "worker.counts", labels={"worker": "a:1"}
            ).increment(3)
            registry.gauge("jobs.running").set(1)
            registry.histogram(
                "remote.count_seconds",
                labels={"worker": "a:1"},
                buckets=(0.1, 1.0),
            ).observe(0.5)
    return tracer, registry


# ----------------------------------------------------------------------
# Document mapping
# ----------------------------------------------------------------------
class TestTraceDocuments:
    def test_document_validates_and_keeps_structure(self):
        tracer, _ = traced_run()
        document = spans_to_resource_spans(
            tracer.spans(), epoch_wall=tracer.epoch_wall
        )
        assert validate_otlp_traces(document) == []
        (block,) = document["resourceSpans"]
        (scope,) = block["scopeSpans"]
        by_name = {s["name"]: s for s in scope["spans"]}
        assert set(by_name) == {"run", "stage"}
        assert by_name["run"]["parentSpanId"] == ""
        assert (
            by_name["stage"]["parentSpanId"]
            == by_name["run"]["spanId"]
        )
        assert (
            by_name["stage"]["traceId"]
            == by_name["run"]["traceId"]
            == tracer.trace_id
        )

    def test_times_are_wall_clock_nanos(self):
        tracer, _ = traced_run()
        document = spans_to_resource_spans(
            tracer.spans(), epoch_wall=tracer.epoch_wall
        )
        span = document["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        start = int(span["startTimeUnixNano"])
        # The run happened "now": within a day of the tracer's epoch.
        assert abs(start / 1e9 - tracer.epoch_wall) < 86400
        assert int(span["endTimeUnixNano"]) >= start

    def test_missing_trace_id_falls_back_to_zero(self):
        span = Span("bare", span_id=new_span_id(), duration=0.1)
        document = spans_to_resource_spans([span])
        assert validate_otlp_traces(document) == []
        rendered = document["resourceSpans"][0]["scopeSpans"][0]
        assert rendered["spans"][0]["traceId"] == NULL_TRACE_ID

    def test_resource_attributes_stamped(self):
        tracer, _ = traced_run()
        document = spans_to_resource_spans(
            tracer.spans(), resource_attributes={"service.name": "x"}
        )
        (attr,) = document["resourceSpans"][0]["resource"]["attributes"]
        assert attr == {
            "key": "service.name", "value": {"stringValue": "x"},
        }

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("resourceSpans"),
            lambda d: d["resourceSpans"][0].pop("scopeSpans"),
            lambda d: d["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
            .update(traceId="xyz"),
            lambda d: d["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
            .update(spanId="123"),
            lambda d: d["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
            .update(startTimeUnixNano=12),
            lambda d: d["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
            .update(name=""),
        ],
    )
    def test_validator_rejects_broken_documents(self, mutate):
        tracer, _ = traced_run()
        document = spans_to_resource_spans(tracer.spans())
        mutate(document)
        assert validate_otlp_traces(document)


class TestMetricDocuments:
    def test_document_validates_and_keeps_kinds(self):
        _, registry = traced_run()
        document = metrics_to_resource_metrics(
            registry.labeled_snapshot(), time_unix_nano=123
        )
        assert validate_otlp_metrics(document) == []
        metrics = document["resourceMetrics"][0]["scopeMetrics"][0][
            "metrics"
        ]
        by_name = {m["name"]: m for m in metrics}
        assert "sum" in by_name["worker.counts"]
        assert by_name["worker.counts"]["sum"]["isMonotonic"] is True
        assert "gauge" in by_name["jobs.running"]
        assert "histogram" in by_name["remote.count_seconds"]

    def test_histogram_point_carries_buckets(self):
        _, registry = traced_run()
        document = metrics_to_resource_metrics(
            registry.labeled_snapshot(), time_unix_nano=123
        )
        metrics = document["resourceMetrics"][0]["scopeMetrics"][0][
            "metrics"
        ]
        (hist,) = [
            m for m in metrics if m["name"] == "remote.count_seconds"
        ]
        (point,) = hist["histogram"]["dataPoints"]
        assert point["explicitBounds"] == [0.1, 1.0]
        assert point["bucketCounts"] == ["0", "1", "0"]
        assert point["count"] == "1"
        assert point["attributes"] == [
            {"key": "worker", "value": {"stringValue": "a:1"}}
        ]

    def test_label_sets_fold_into_one_metric(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"worker": "a:1"}).increment()
        registry.counter("c", labels={"worker": "b:2"}).increment(2)
        document = metrics_to_resource_metrics(
            registry.labeled_snapshot(), time_unix_nano=1
        )
        (metric,) = document["resourceMetrics"][0]["scopeMetrics"][0][
            "metrics"
        ]
        assert len(metric["sum"]["dataPoints"]) == 2

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("resourceMetrics"),
            lambda d: d["resourceMetrics"][0]["scopeMetrics"][0][
                "metrics"
            ][0].update(gauge={"dataPoints": []}),
            lambda d: d["resourceMetrics"][0]["scopeMetrics"][0][
                "metrics"
            ][0]["sum"].update(dataPoints=[]),
        ],
    )
    def test_validator_rejects_broken_documents(self, mutate):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        document = metrics_to_resource_metrics(
            registry.labeled_snapshot(), time_unix_nano=1
        )
        mutate(document)
        assert validate_otlp_metrics(document)


# ----------------------------------------------------------------------
# Property tests: labels and buckets survive export
# ----------------------------------------------------------------------
label_names = st.text(
    st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=8,
)
label_values = st.text(min_size=0, max_size=16)
label_sets = st.dictionaries(label_names, label_values, max_size=4)


@settings(max_examples=50, deadline=None)
@given(labels=label_sets, value=st.integers(0, 2**40))
def test_counter_labels_survive_export(labels, value):
    registry = MetricsRegistry()
    registry.counter("c", labels=labels).increment(value)
    document = metrics_to_resource_metrics(
        registry.labeled_snapshot(), time_unix_nano=1
    )
    assert validate_otlp_metrics(document) == []
    (metric,) = document["resourceMetrics"][0]["scopeMetrics"][0][
        "metrics"
    ]
    (point,) = metric["sum"]["dataPoints"]
    assert point["asInt"] == str(value)
    exported = {
        kv["key"]: kv["value"]["stringValue"]
        for kv in point["attributes"]
    }
    assert exported == labels


@settings(max_examples=50, deadline=None)
@given(
    bounds=st.lists(
        st.floats(
            min_value=1e-6, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        ),
        min_size=1, max_size=8, unique=True,
    ).map(sorted),
    observations=st.lists(
        st.floats(
            min_value=0.0, max_value=2e6,
            allow_nan=False, allow_infinity=False,
        ),
        min_size=1, max_size=32,
    ),
    labels=label_sets,
)
def test_histogram_buckets_survive_export(bounds, observations, labels):
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "h", labels=labels, buckets=bounds
    )
    histogram.observe_many(observations)
    document = metrics_to_resource_metrics(
        registry.labeled_snapshot(), time_unix_nano=1
    )
    assert validate_otlp_metrics(document) == []
    (metric,) = document["resourceMetrics"][0]["scopeMetrics"][0][
        "metrics"
    ]
    (point,) = metric["histogram"]["dataPoints"]
    assert point["explicitBounds"] == [float(b) for b in bounds]
    assert len(point["bucketCounts"]) == len(bounds) + 1
    assert sum(int(c) for c in point["bucketCounts"]) == len(
        observations
    )
    assert point["count"] == str(len(observations))
    exported = {
        kv["key"]: kv["value"]["stringValue"]
        for kv in point["attributes"]
    }
    assert exported == labels


# ----------------------------------------------------------------------
# The pusher against a live stub collector
# ----------------------------------------------------------------------
class TestPusher:
    def make(self, collector, tracer=None, metrics=None, **overrides):
        options = dict(
            interval=30.0, backoff_seconds=0.001, timeout=5.0
        )
        options.update(overrides)
        return TelemetryPusher(
            collector.endpoint, tracer=tracer, metrics=metrics,
            **options,
        )

    def test_flush_pushes_both_signals(self, collector):
        tracer, registry = traced_run()
        pusher = self.make(collector, tracer=tracer, metrics=registry)
        pusher.flush()
        ((status, traces),) = collector.requests_to("/v1/traces")
        assert status == 200
        assert validate_otlp_traces(traces) == []
        ((status, metrics),) = collector.requests_to("/v1/metrics")
        assert status == 200
        assert validate_otlp_metrics(metrics) == []
        assert pusher.stats["pushed_batches"] == 2
        assert pusher.stats["pushed_spans"] == len(tracer.spans())

    def test_spans_push_incrementally(self, collector):
        tracer, _ = traced_run()
        pusher = self.make(collector, tracer=tracer)
        pusher.flush()
        with tracer.start_span("later"):
            pass
        pusher.flush()
        batches = collector.requests_to("/v1/traces")
        assert len(batches) == 2
        second = batches[1][1]["resourceSpans"][0]["scopeSpans"][0]
        assert [s["name"] for s in second["spans"]] == ["later"]

    def test_retries_on_5xx_then_delivers(self, collector):
        tracer, _ = traced_run()
        collector.fail_next(500, 503)
        pusher = self.make(collector, tracer=tracer, max_retries=3)
        pusher.flush()
        statuses = [s for s, _ in collector.requests_to("/v1/traces")]
        assert statuses == [500, 503, 200]
        assert pusher.stats["retries"] == 2
        assert pusher.stats["pushed_batches"] == 1
        assert pusher.stats["dropped_batches"] == 0

    def test_drops_after_max_retries(self, collector):
        tracer, _ = traced_run()
        collector.fail_next(500, 500)
        pusher = self.make(collector, tracer=tracer, max_retries=1)
        pusher.flush()
        assert pusher.stats["pushed_batches"] == 0
        assert pusher.stats["dropped_batches"] == 1
        assert pusher.stats["retries"] == 1

    def test_non_retryable_4xx_drops_immediately(self, collector):
        tracer, _ = traced_run()
        collector.fail_next(400)
        pusher = self.make(collector, tracer=tracer, max_retries=3)
        pusher.flush()
        assert len(collector.requests_to("/v1/traces")) == 1
        assert pusher.stats["retries"] == 0
        assert pusher.stats["dropped_batches"] == 1

    def test_unreachable_collector_never_raises(self):
        tracer, _ = traced_run()
        pusher = TelemetryPusher(
            "http://127.0.0.1:9",  # discard port: nothing listens
            tracer=tracer,
            max_retries=0,
            backoff_seconds=0.0,
            timeout=0.5,
        )
        pusher.flush()
        assert pusher.stats["dropped_batches"] == 1
        assert pusher.stats["send_failures"] >= 1

    def test_bounded_queue_drops_oldest(self, collector):
        tracer, _ = traced_run()
        pusher = self.make(collector, tracer=tracer, max_queue=1)
        pusher._collect()
        with tracer.start_span("later"):
            pass
        pusher._collect()
        assert pusher.stats["dropped_batches"] == 1
        pusher.flush()
        ((_, document),) = collector.requests_to("/v1/traces")
        names = [
            s["name"]
            for s in document["resourceSpans"][0]["scopeSpans"][0][
                "spans"
            ]
        ]
        assert names == ["later"]

    def test_close_drains_outstanding_telemetry(self, collector):
        tracer, registry = traced_run()
        pusher = self.make(
            collector, tracer=tracer, metrics=registry
        ).start()
        # The interval is far away; only the drain can deliver these.
        pusher.close(drain=True)
        assert collector.requests_to("/v1/traces")
        assert collector.requests_to("/v1/metrics")
        pusher.close(drain=True)  # idempotent

    def test_stats_mirror_into_registry(self, collector):
        tracer, registry = traced_run()
        pusher = self.make(collector, tracer=tracer, metrics=registry)
        pusher.flush()
        labeled = registry.labeled_snapshot()
        mirrored = {
            (c["name"], c["labels"].get("endpoint"))
            for c in labeled["counters"]
        }
        assert ("otlp.pushed_batches", collector.endpoint) in mirrored

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"endpoint": "ftp://x:1", "tracer": Tracer()},
            {"endpoint": "http://x:1"},
            {"endpoint": "http://x:1", "tracer": Tracer(),
             "interval": 0.0},
            {"endpoint": "http://x:1", "tracer": Tracer(),
             "max_queue": 0},
            {"endpoint": "http://x:1", "tracer": Tracer(),
             "max_retries": -1},
        ],
    )
    def test_bad_arguments_rejected(self, kwargs):
        endpoint = kwargs.pop("endpoint")
        with pytest.raises(ValueError):
            TelemetryPusher(endpoint, **kwargs)

    def test_schemeless_endpoint_accepted(self):
        pusher = TelemetryPusher("localhost:4318", tracer=Tracer())
        assert pusher._host == "localhost"
        assert pusher._port == 4318

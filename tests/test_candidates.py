"""Unit tests for repro.core.candidates (Section 5.1)."""

from repro.core import Item, make_itemset
from repro.core.candidates import (
    generate_candidates,
    join,
    pairs_by_attribute,
    singleton_itemsets,
    subset_prune,
)

# Shorthand for the paper's Section 5.1 example items.
MARRIED_YES = Item(1, 0, 0)
AGE_20_24 = Item(0, 0, 0)
AGE_20_29 = Item(0, 0, 1)
CARS_0_1 = Item(2, 0, 1)


def itemset(*items):
    return make_itemset(items)


class TestJoin:
    def test_paper_example(self):
        # L2 of Section 5.1 (attribute order: Age < Married < NumCars):
        l2 = [
            itemset(MARRIED_YES, AGE_20_24),
            itemset(MARRIED_YES, AGE_20_29),
            itemset(MARRIED_YES, CARS_0_1),
            itemset(AGE_20_29, CARS_0_1),
        ]
        joined = join(l2, 3)
        # Joining on the shared first item: {Age..., Married...} pairs with
        # {Age..., NumCars...} only when prefixes match.
        assert itemset(AGE_20_29, MARRIED_YES, CARS_0_1) in joined
        # <Age: 20..24> and <Age: 20..29> never co-join (same attribute).
        for candidate in joined:
            attrs = [it.attribute for it in candidate]
            assert len(set(attrs)) == len(attrs)

    def test_same_attribute_last_items_skipped(self):
        l2 = [
            itemset(MARRIED_YES, AGE_20_24),
            itemset(MARRIED_YES, AGE_20_29),
        ]
        # Both candidates end in Age items -> no join.
        assert join(sorted(l2), 3) == []

    def test_k2_join_is_cross_attribute_pairs(self):
        l1 = [ (AGE_20_24,), (AGE_20_29,), (MARRIED_YES,), (CARS_0_1,) ]
        pairs = join(sorted(l1), 2)
        assert itemset(AGE_20_24, MARRIED_YES) in pairs
        assert itemset(AGE_20_24, CARS_0_1) in pairs
        # No pair of two Age ranges:
        assert all(
            len({it.attribute for it in p}) == 2 for p in pairs
        )

    def test_join_rejects_k1(self):
        import pytest

        with pytest.raises(ValueError):
            join([], 1)


class TestSubsetPrune:
    def test_paper_prune_example(self):
        # {Married, Age 20..24, Cars} is deleted because
        # {Age 20..24, Cars} is not in L2.
        l2 = [
            itemset(MARRIED_YES, AGE_20_24),
            itemset(MARRIED_YES, AGE_20_29),
            itemset(MARRIED_YES, CARS_0_1),
            itemset(AGE_20_29, CARS_0_1),
        ]
        candidates = join(l2, 3)
        pruned = subset_prune(candidates, l2)
        assert pruned == [itemset(AGE_20_29, MARRIED_YES, CARS_0_1)]

    def test_generate_candidates_combines_both(self):
        l2 = [
            itemset(MARRIED_YES, AGE_20_29),
            itemset(MARRIED_YES, CARS_0_1),
            itemset(AGE_20_29, CARS_0_1),
        ]
        assert generate_candidates(l2, 3) == [
            itemset(AGE_20_29, MARRIED_YES, CARS_0_1)
        ]


class TestHelpers:
    def test_singleton_itemsets(self):
        singles = singleton_itemsets([MARRIED_YES, AGE_20_24])
        assert singles == [(AGE_20_24,), (MARRIED_YES,)]

    def test_pairs_by_attribute(self):
        buckets = pairs_by_attribute([MARRIED_YES, AGE_20_29, AGE_20_24])
        assert buckets == {
            0: [AGE_20_24, AGE_20_29],
            1: [MARRIED_YES],
        }

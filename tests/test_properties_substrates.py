"""Property-based tests for the substrates (hash-tree, R*-tree, Apriori)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans import (
    HashTree,
    TransactionDatabase,
    apriori,
    generate_rules,
)
from repro.rtree import Rect, RStarTree

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
items = st.integers(min_value=0, max_value=14)
itemset3 = st.frozensets(items, min_size=3, max_size=3)
transaction = st.frozensets(items, min_size=0, max_size=8)


def rect_1d(lo=-50, hi=50):
    return st.tuples(
        st.floats(lo, hi, allow_nan=False), st.floats(0, 20, allow_nan=False)
    ).map(lambda t: Rect((t[0],), (t[0] + t[1],)))


def rect_2d():
    coord = st.floats(-50, 50, allow_nan=False)
    side = st.floats(0, 20, allow_nan=False)
    return st.tuples(coord, coord, side, side).map(
        lambda t: Rect((t[0], t[1]), (t[0] + t[2], t[1] + t[3]))
    )


class TestHashTreeProperties:
    @given(
        st.sets(itemset3, min_size=1, max_size=40),
        st.lists(transaction, min_size=1, max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_subsets_equals_brute_force(self, itemsets, transactions):
        stored = [tuple(sorted(s)) for s in itemsets]
        tree = HashTree.build(stored, leaf_capacity=2, num_buckets=3)
        for t in transactions:
            got = sorted(tree.subsets(t))
            want = sorted(s for s in stored if set(s).issubset(t))
            assert got == want

    @given(st.sets(itemset3, min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_everything_inserted_is_found(self, itemsets):
        stored = [tuple(sorted(s)) for s in itemsets]
        tree = HashTree.build(stored, leaf_capacity=1, num_buckets=2)
        assert len(tree) == len(stored)
        for s in stored:
            assert s in tree


class TestRStarProperties:
    @given(
        st.lists(rect_2d(), min_size=1, max_size=80),
        st.lists(
            st.tuples(
                st.floats(-60, 60, allow_nan=False),
                st.floats(-60, 60, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_point_queries_match_linear_scan(self, rects, points):
        tree = RStarTree(ndim=2, max_entries=4)
        for i, r in enumerate(rects):
            tree.insert(r, i)
        assert tree.size == len(rects)
        for p in points:
            got = sorted(tree.containing_point(p))
            want = sorted(
                i for i, r in enumerate(rects) if r.contains_point(p)
            )
            assert got == want

    @given(st.lists(rect_1d(), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_all_entries_survive_insertion(self, rects):
        tree = RStarTree(ndim=1, max_entries=4)
        for i, r in enumerate(rects):
            tree.insert(r, i)
        values = sorted(v for _, v in tree.all_entries())
        assert values == list(range(len(rects)))


class TestAprioriProperties:
    @given(
        st.lists(transaction, min_size=1, max_size=25),
        st.floats(0.1, 0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_supports_exact_and_downward_closed(self, transactions, minsup):
        db = TransactionDatabase(transactions)
        result = apriori(db, minsup)
        frequent = set(result.support_counts)
        for itemset, count in result.support_counts.items():
            assert count == db.support_count(itemset)
            assert count >= minsup * len(db)
            for r in range(1, len(itemset)):
                for subset in itertools.combinations(itemset, r):
                    assert subset in frequent

    @given(
        st.lists(transaction, min_size=2, max_size=20),
        st.floats(0.1, 0.6),
        st.floats(0.1, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_rule_confidence_consistency(self, transactions, minsup, minconf):
        db = TransactionDatabase(transactions)
        result = apriori(db, minsup)
        for rule in generate_rules(result, minconf):
            joint = db.support(
                tuple(rule.antecedent) + tuple(rule.consequent)
            )
            base = db.support(rule.antecedent)
            assert rule.confidence >= minconf
            assert abs(rule.confidence - joint / base) < 1e-9
